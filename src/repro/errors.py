"""Exception hierarchy for the HybriMoE reproduction.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid model, hardware, or system configuration was supplied."""


class SchedulingError(ReproError):
    """The scheduler produced or received an inconsistent state.

    Raised, for example, when an execution plan misses an activated expert,
    computes an expert twice, or orders a GPU task before the transfer that
    makes its weights available.
    """


class CacheError(ReproError):
    """An expert-cache invariant was violated.

    Raised when capacity would be exceeded, a pinned entry would be evicted,
    or a key is inserted twice.
    """


class SimulationError(ReproError):
    """The discrete-event hardware simulator detected an impossible state."""


class TraceError(ReproError):
    """A routing trace is malformed or inconsistent with its model config."""
