"""Command-line interface for the HybriMoE reproduction.

Subcommands::

    python -m repro.cli run       --model deepseek --strategy hybrimoe ...
    python -m repro.cli serve     --strategy hybrimoe --arrival-rate 4 --num-requests 32
    python -m repro.cli compare   --model qwen2 --cache-ratio 0.25 ...
    python -m repro.cli figure    fig8 [--full]
    python -m repro.cli sweep     --scenarios chat-multiturn,edge-decode --out out/sweep
    python -m repro.cli scenarios list
    python -m repro.cli info

``run`` executes one generation and prints its metrics; ``serve`` runs
a multi-request continuous-batching serving trace (Poisson arrivals at
``--arrival-rate`` requests/s, or an explicit ``--arrival-trace``) and
prints per-request queueing delay, TTFT and TBT percentiles plus the
aggregate (goodput, pooled percentiles) — with ``--replicas M
--router POLICY`` the trace is served by an M-replica fleet behind a
front-end router instead of one engine; ``compare`` races all
five frameworks on one workload; ``figure`` regenerates one paper
artifact (quick scale by default); ``sweep`` fans registered scenarios
x strategies x hardware presets out over worker processes into a
resumable output directory (see :mod:`repro.scenarios`); ``scenarios
list`` shows the registry; ``info`` lists presets.
"""

from __future__ import annotations

import argparse
import sys

from repro.cache.base import available_policies
from repro.cache.placement import available_placements
from repro.engine.factory import (
    available_strategies,
    make_engine,
    make_fleet,
    make_serving_engine,
)
from repro.errors import ConfigError
from repro.experiments import figures
from repro.experiments.reporting import add_speedup_column, format_table
from repro.experiments.runner import run_workload
from repro.fleet.faults import FaultSchedule, ReplicaFault
from repro.fleet.router import available_routers
from repro.hardware.faults import (
    HARDWARE_FAULT_KINDS,
    HardwareFault,
    HardwareFaultSchedule,
)
from repro.hardware.platform_presets import HARDWARE_PRESETS
from repro.models.presets import MODEL_PRESETS, get_preset
from repro.rng import derive_rng
from repro.workloads.generator import (
    decode_workload,
    prefill_workloads,
    serving_workload,
)

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig3a": lambda scale, seed: figures.fig3a_activation_cdf(scale=scale, seed=seed),
    "fig3b": lambda scale, seed: figures.fig3b_reuse_probability(scale=scale, seed=seed),
    "fig3c": lambda scale, seed: figures.fig3c_workload_distribution(scale=scale, seed=seed),
    "fig3d": lambda scale, seed: figures.fig3d_existing_methods(scale=scale, seed=seed),
    "fig3e": lambda scale, seed: figures.fig3e_expert_count_sweep(),
    "fig3f": lambda scale, seed: figures.fig3f_workload_sweep(),
    "fig7": lambda scale, seed: figures.fig7_prefill(scale=scale, seed=seed),
    "fig8": lambda scale, seed: figures.fig8_decode(scale=scale, seed=seed),
    "fig9": lambda scale, seed: figures.fig9_cache_hit_rate(scale=scale, seed=seed),
    "table3": lambda scale, seed: figures.table3_ablation(scale=scale, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HybriMoE reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one generation and print metrics")
    run.add_argument("--model", default="deepseek", choices=sorted(MODEL_PRESETS))
    run.add_argument("--strategy", default="hybrimoe", choices=available_strategies())
    run.add_argument("--cache-ratio", type=float, default=0.5)
    run.add_argument("--hardware", default="paper", choices=sorted(HARDWARE_PRESETS))
    run.add_argument("--prompt-len", type=int, default=128)
    run.add_argument("--decode-steps", type=int, default=32)
    run.add_argument("--num-layers", type=int, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--num-gpus", type=int, default=1, help="simulated GPU devices (sharded cache above 1)"
    )
    run.add_argument(
        "--placement",
        default="round_robin",
        choices=available_placements(),
        help="expert-placement policy of the sharded cache",
    )
    run.add_argument(
        "--planner",
        default="fast",
        choices=["fast", "reference"],
        help="planner implementation (plans are bit-identical; "
        "'reference' is the pre-fast-path planner — from-scratch "
        "simulation, no memo — for perf baselines)",
    )
    run.add_argument(
        "--engine",
        default="fast",
        choices=["fast", "reference"],
        help="engine-core implementation (outputs are bit-identical; "
        "'reference' is the pre-fast-path engine loop — per-task "
        "records, rescanning frontiers — for perf baselines)",
    )
    _add_tiered_memory_args(run)
    _add_predictor_args(run)

    serve = sub.add_parser(
        "serve", help="serve a multi-request arrival trace with continuous batching"
    )
    serve.add_argument("--model", default="deepseek", choices=sorted(MODEL_PRESETS))
    serve.add_argument("--strategy", default="hybrimoe", choices=available_strategies())
    serve.add_argument("--cache-ratio", type=float, default=0.5)
    serve.add_argument("--hardware", default="paper", choices=sorted(HARDWARE_PRESETS))
    serve.add_argument("--num-layers", type=int, default=None)
    serve.add_argument(
        "--num-requests",
        type=int,
        default=None,
        help="number of requests (default 8; inferred from --arrival-trace)",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        help="Poisson arrival rate in requests/s",
    )
    serve.add_argument(
        "--arrival-trace",
        default=None,
        help="comma-separated arrival instants (overrides --arrival-rate)",
    )
    serve.add_argument("--decode-steps", type=int, default=16)
    serve.add_argument(
        "--priority-mix",
        default=None,
        help="per-class arrival fractions, e.g. 'interactive=0.25,batch=0.75' "
        "(default: every request in the batch class — pure FCFS)",
    )

    serving_group = serve.add_argument_group(
        "serving", "continuous-batching loop knobs (one replica's scheduler)"
    )
    serving_group.add_argument("--max-batch-size", type=int, default=8)
    serving_group.add_argument(
        "--prefill-chunk",
        type=int,
        default=None,
        metavar="TOKENS",
        help="chunked prefill: bound each prefill step to TOKENS prompt "
        "tokens, interleaving slices with decode steps",
    )
    serving_group.add_argument(
        "--preempt",
        action="store_true",
        help="allow arrived higher-priority requests to pause the "
        "lowest-priority decoder when the batch is full",
    )

    fleet_group = serve.add_argument_group(
        "fleet", "replica pool behind a front-end router"
    )
    fleet_group.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replica fleet size (1 = the bare single serving engine; "
        "above 1 a FleetRouter spreads arrivals across identical replicas)",
    )
    fleet_group.add_argument(
        "--router",
        default="round_robin",
        help="fleet routing policy (only meaningful with --replicas > 1); "
        f"one of: {', '.join(available_routers())}",
    )

    faults_group = serve.add_argument_group(
        "faults", "replica and sub-replica fault injection"
    )
    faults_group.add_argument(
        "--fault-spec",
        default=None,
        metavar="SPEC",
        help="comma-separated fault windows 'kind:replica:at[:duration"
        "[:severity]]'; kinds crash (no duration) and slow (duration) "
        "are replica faults needing --replicas > 1, kinds "
        f"{', '.join(HARDWARE_FAULT_KINDS)} are sub-replica hardware "
        "faults (duration required, severity where the kind takes one)",
    )

    resilience_group = serve.add_argument_group(
        "resilience", "timeouts, overload shedding and retry policy"
    )
    resilience_group.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="end-to-end per-request budget from arrival; requests still "
        "unfinished past it are aborted (status timed_out)",
    )
    resilience_group.add_argument(
        "--shed",
        default=None,
        metavar="DEPTH[:RESUME]",
        help="overload shedding: refuse arrived queued requests beyond "
        "DEPTH, draining to RESUME (default DEPTH//2); lowest class "
        "sheds first, newest arrival first",
    )
    resilience_group.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="timeout retry budget per request (fleet only: retries are "
        "re-routed like failovers)",
    )
    resilience_group.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base retry backoff; retry n waits backoff * 2**(n-1)",
    )

    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--num-gpus", type=int, default=1, help="simulated GPU devices (sharded cache above 1)"
    )
    serve.add_argument(
        "--placement",
        default="round_robin",
        choices=available_placements(),
        help="expert-placement policy of the sharded cache",
    )
    serve.add_argument(
        "--planner",
        default="fast",
        choices=["fast", "reference"],
        help="planner implementation (plans are bit-identical; "
        "'reference' is the pre-fast-path planner — from-scratch "
        "simulation, no memo — for perf baselines)",
    )
    serve.add_argument(
        "--engine",
        default="fast",
        choices=["fast", "reference"],
        help="engine-core implementation (outputs are bit-identical; "
        "'reference' is the pre-fast-path engine loop — per-task "
        "records, rescanning frontiers — for perf baselines)",
    )
    _add_tiered_memory_args(serve)
    _add_predictor_args(serve)

    compare = sub.add_parser("compare", help="race all frameworks on one workload")
    compare.add_argument("--model", default="deepseek", choices=sorted(MODEL_PRESETS))
    compare.add_argument("--cache-ratio", type=float, default=0.25)
    compare.add_argument("--stage", default="decode", choices=["prefill", "decode"])
    compare.add_argument("--prompt-len", type=int, default=128)
    compare.add_argument("--decode-steps", type=int, default=16)
    compare.add_argument("--num-layers", type=int, default=8)
    compare.add_argument("--seed", type=int, default=0)

    figure = sub.add_parser("figure", help="regenerate one paper artifact")
    figure.add_argument("name", choices=sorted(_FIGURES))
    figure.add_argument("--full", action="store_true", help="paper-scale grid")
    figure.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep",
        help="fan scenarios x strategies x hardware out into a resumable "
        "output directory",
    )
    sweep.add_argument(
        "--scenarios",
        required=True,
        metavar="NAMES",
        help="comma-separated registered scenario names "
        "(see 'scenarios list')",
    )
    sweep.add_argument(
        "--strategies",
        default=None,
        metavar="NAMES",
        help="comma-separated strategy override axis "
        "(default: each scenario's own strategy)",
    )
    sweep.add_argument(
        "--hardware",
        default=None,
        metavar="NAMES",
        help="comma-separated hardware-preset override axis "
        "(default: each scenario's own preset)",
    )
    sweep.add_argument(
        "--seeds",
        default=None,
        metavar="INTS",
        help="comma-separated seed override axis "
        "(default: each scenario's own seed list)",
    )
    sweep.add_argument(
        "--predictors",
        default=None,
        metavar="NAMES",
        help="comma-separated predictor override axis; 'none' means "
        "predictor off, so 'none,transition' races the heuristic "
        "against the predictor cell-for-cell "
        "(default: each scenario's own setting)",
    )
    sweep.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory: per-cell JSON under DIR/cells/, merged "
        "report at DIR/sweep.json; re-running resumes, skipping "
        "completed cells",
    )
    sweep.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    sweep.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="cap every cell's request/session count (CI smoke control)",
    )
    sweep.add_argument(
        "--steps",
        type=int,
        default=None,
        metavar="N",
        help="cap every cell's decode steps (CI smoke control)",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="re-run every cell even when a completed file exists",
    )

    scenarios = sub.add_parser("scenarios", help="scenario registry utilities")
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_sub.add_parser("list", help="list registered scenarios")

    sub.add_parser("info", help="list model and hardware presets")
    return parser


def _add_tiered_memory_args(parser: argparse.ArgumentParser) -> None:
    """The tiered-memory knob trio shared by ``run`` and ``serve``."""
    parser.add_argument(
        "--cpu-cache-capacity",
        type=int,
        default=None,
        metavar="SLOTS",
        help="routed-expert slots of host DRAM (default: unbounded — "
        "the classic two-tier engine); experts outside both caches "
        "spill to disk",
    )
    parser.add_argument(
        "--cpu-cache-policy",
        default="lru",
        choices=available_policies(),
        help="eviction policy of the DRAM tier",
    )
    parser.add_argument(
        "--disk-bandwidth",
        type=float,
        default=None,
        metavar="BYTES_PER_S",
        help="override the hardware profile's disk read bandwidth",
    )


def _add_predictor_args(parser: argparse.ArgumentParser) -> None:
    """The predictive-scheduling knob trio shared by ``run`` and ``serve``."""
    from repro.prediction import available_predictors

    parser.add_argument(
        "--predictor",
        default=None,
        choices=available_predictors(),
        help="cross-layer expert predictor driving confidence-gated deep "
        "prefetching (default: off — the heuristic prefetcher, "
        "bit-identical to the historical engine)",
    )
    parser.add_argument(
        "--predict-horizon",
        type=int,
        default=4,
        metavar="LAYERS",
        help="deepest lookahead distance a confident predictor may "
        "extend prefetching to",
    )
    parser.add_argument(
        "--confidence-gate",
        type=float,
        default=0.6,
        metavar="THRESHOLD",
        help="calibrated-confidence threshold in [0, 1] the predictor "
        "must clear before it influences prefetch decisions (1.0 "
        "never fires)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    engine = make_engine(
        model=args.model,
        strategy=args.strategy,
        cache_ratio=args.cache_ratio,
        hardware=args.hardware,
        num_layers=args.num_layers,
        seed=args.seed,
        num_gpus=args.num_gpus,
        placement=args.placement,
        planner_fast_path=args.planner == "fast",
        engine_fast_path=args.engine == "fast",
        cpu_cache_capacity=args.cpu_cache_capacity,
        cpu_cache_policy=args.cpu_cache_policy,
        disk_bandwidth=args.disk_bandwidth,
        predictor=args.predictor,
        predict_horizon=args.predict_horizon,
        confidence_gate=args.confidence_gate,
    )
    rng = derive_rng(args.seed, "cli", "prompt")
    prompt = rng.integers(0, engine.model.vocab_size, size=args.prompt_len)
    result = engine.generate(prompt, decode_steps=args.decode_steps)
    print(format_table([result.summary()], title="run result"))
    _print_tier_table(engine)
    return 0


def _print_tier_table(engine) -> None:
    """Per-tier cache table plus disk-link traffic (tiered runs only)."""
    runtime = engine.runtime
    if not runtime.tiered:
        return
    cache = runtime.cache
    rows = [
        {
            "tier": tier,
            "hit_rate": stats.hit_rate,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
        }
        for tier, stats in cache.tier_stats().items()
    ]
    print(format_table(rows, title="per-tier cache"))
    disk = runtime.clock.disk
    print(f"disk link: {len(disk.intervals)} reads, {disk.busy_time():.4f}s busy")


def _parse_priority_mix(text: str | None) -> dict[str, float] | None:
    """Parse ``'interactive=0.25,batch=0.75'`` into a mix mapping."""
    if text is None:
        return None
    mix: dict[str, float] = {}
    for part in text.split(","):
        name, _, fraction = part.partition("=")
        if not _ or not name.strip():
            raise ConfigError(
                f"bad --priority-mix entry {part!r}; expected CLASS=FRACTION"
            )
        try:
            mix[name.strip()] = float(fraction)
        except ValueError:
            raise ConfigError(
                f"bad --priority-mix fraction {fraction!r} for {name.strip()!r}"
            ) from None
    return mix


def _serve_arrivals(args: argparse.Namespace) -> tuple[list[float] | None, float | None]:
    """Resolve the (arrival_times, arrival_rate) pair for ``serve``."""
    if args.arrival_trace is not None:
        return [float(t) for t in args.arrival_trace.split(",")], None
    return None, args.arrival_rate


def _parse_fault_spec(
    text: str | None,
) -> tuple[FaultSchedule | None, HardwareFaultSchedule | None]:
    """Parse ``--fault-spec`` into (replica, hardware) fault schedules.

    Grammar per comma-separated entry:
    ``kind:replica:at[:duration[:severity]]`` — ``crash`` takes no
    duration, ``slow`` takes exactly a duration, the hardware kinds
    take a duration and (``link_degrade``/``gpu_straggler``) a
    severity.
    """
    if text is None:
        return None, None
    replica_faults: list[ReplicaFault] = []
    hardware_faults: list[HardwareFault] = []
    for part in text.split(","):
        fields = [f.strip() for f in part.strip().split(":")]
        if len(fields) < 3:
            raise ConfigError(
                f"bad --fault-spec entry {part.strip()!r}; expected "
                f"kind:replica:at[:duration[:severity]]"
            )
        kind = fields[0]
        try:
            replica = int(fields[1])
            at_time = float(fields[2])
            rest = [float(f) for f in fields[3:]]
        except ValueError:
            raise ConfigError(
                f"bad --fault-spec numbers in {part.strip()!r}"
            ) from None
        if kind == "crash":
            if rest:
                raise ConfigError(
                    f"crash faults take no duration/severity: {part.strip()!r}"
                )
            replica_faults.append(
                ReplicaFault(replica=replica, at_time=at_time, kind="crash")
            )
        elif kind == "slow":
            if len(rest) != 1:
                raise ConfigError(
                    f"slow faults need exactly a duration: {part.strip()!r}"
                )
            replica_faults.append(
                ReplicaFault(
                    replica=replica, at_time=at_time, kind="slow", duration=rest[0]
                )
            )
        elif kind in HARDWARE_FAULT_KINDS:
            if not 1 <= len(rest) <= 2:
                raise ConfigError(
                    f"hardware faults need a duration and optionally a "
                    f"severity: {part.strip()!r}"
                )
            hardware_faults.append(
                HardwareFault(
                    kind=kind,
                    at_time=at_time,
                    duration=rest[0],
                    severity=rest[1] if len(rest) == 2 else 1.0,
                    replica=replica,
                )
            )
        else:
            known = "crash, slow, " + ", ".join(HARDWARE_FAULT_KINDS)
            raise ConfigError(f"unknown fault kind {kind!r} (known: {known})")
    return (
        FaultSchedule(replica_faults) if replica_faults else None,
        HardwareFaultSchedule(hardware_faults) if hardware_faults else None,
    )


def _parse_shed(text: str | None) -> tuple[int | None, int | None]:
    """Parse ``--shed DEPTH[:RESUME]`` into the watermark pair."""
    if text is None:
        return None, None
    depth_text, _, resume_text = text.partition(":")
    try:
        depth = int(depth_text)
        resume = int(resume_text) if resume_text else None
    except ValueError:
        raise ConfigError(
            f"bad --shed value {text!r}; expected DEPTH[:RESUME]"
        ) from None
    return depth, resume


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """``serve --replicas M``: route the trace through a replica fleet."""
    fault_schedule, hardware_faults = _parse_fault_spec(args.fault_spec)
    shed_depth, shed_resume = _parse_shed(args.shed)
    fleet = make_fleet(
        model=args.model,
        strategy=args.strategy,
        cache_ratio=args.cache_ratio,
        hardware=args.hardware,
        num_layers=args.num_layers,
        seed=args.seed,
        num_gpus=args.num_gpus,
        placement=args.placement,
        planner_fast_path=args.planner == "fast",
        engine_fast_path=args.engine == "fast",
        cpu_cache_capacity=args.cpu_cache_capacity,
        cpu_cache_policy=args.cpu_cache_policy,
        disk_bandwidth=args.disk_bandwidth,
        predictor=args.predictor,
        predict_horizon=args.predict_horizon,
        confidence_gate=args.confidence_gate,
        max_batch_size=args.max_batch_size,
        prefill_chunk_tokens=args.prefill_chunk,
        preemption=args.preempt,
        replicas=args.replicas,
        router=args.router,
        request_timeout_s=args.request_timeout,
        shed_queue_depth=shed_depth,
        shed_resume_depth=shed_resume,
        fault_schedule=fault_schedule,
        hardware_faults=hardware_faults,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
    )
    arrival_times, arrival_rate = _serve_arrivals(args)
    trace = serving_workload(
        num_requests=args.num_requests,
        arrival_rate=arrival_rate,
        arrival_times=arrival_times,
        decode_steps=args.decode_steps,
        vocab_size=fleet.replicas[0].engine.model.vocab_size,
        seed=args.seed,
        priority_mix=_parse_priority_mix(args.priority_mix),
    )
    report = fleet.serve_trace(trace)
    counts = report.assignment_counts()
    replica_rows = [
        {"replica": rid, "assigned": counts.get(rid, 0), **rep.summary()}
        for rid, rep in report.per_replica
    ]
    print(
        format_table(
            replica_rows,
            title=f"fleet: {args.replicas}x {args.strategy} on {args.model} @ "
            f"{args.cache_ratio:.0%} cache, router={args.router}, "
            f"batch<={args.max_batch_size}",
        )
    )
    print(format_table([report.summary()], title="fleet aggregate (merged)"))
    if len(report.merged.priority_classes()) > 1:
        print(format_table(report.merged.class_summary(), title="per-class SLO"))
    if report.num_failovers:
        print(f"failovers: {report.num_failovers}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.replicas < 1:
        raise ConfigError(f"--replicas must be >= 1, got {args.replicas}")
    if args.replicas > 1:
        return _cmd_serve_fleet(args)
    fault_schedule, hardware_faults = _parse_fault_spec(args.fault_spec)
    if fault_schedule is not None:
        raise ConfigError(
            "crash/slow faults are replica faults; they need --replicas > 1"
        )
    if hardware_faults is not None and any(
        f.replica != 0 for f in hardware_faults
    ):
        raise ConfigError(
            "hardware faults on replica != 0 need --replicas > 1"
        )
    if args.max_retries > 0:
        raise ConfigError(
            "--max-retries needs --replicas > 1 (retries are re-routed "
            "through the fleet)"
        )
    shed_depth, shed_resume = _parse_shed(args.shed)
    serving = make_serving_engine(
        model=args.model,
        strategy=args.strategy,
        cache_ratio=args.cache_ratio,
        hardware=args.hardware,
        num_layers=args.num_layers,
        seed=args.seed,
        num_gpus=args.num_gpus,
        placement=args.placement,
        planner_fast_path=args.planner == "fast",
        engine_fast_path=args.engine == "fast",
        cpu_cache_capacity=args.cpu_cache_capacity,
        cpu_cache_policy=args.cpu_cache_policy,
        disk_bandwidth=args.disk_bandwidth,
        predictor=args.predictor,
        predict_horizon=args.predict_horizon,
        confidence_gate=args.confidence_gate,
        max_batch_size=args.max_batch_size,
        prefill_chunk_tokens=args.prefill_chunk,
        preemption=args.preempt,
        request_timeout_s=args.request_timeout,
        shed_queue_depth=shed_depth,
        shed_resume_depth=shed_resume,
        hardware_faults=hardware_faults,
    )
    arrival_times, arrival_rate = _serve_arrivals(args)
    trace = serving_workload(
        num_requests=args.num_requests,
        arrival_rate=arrival_rate,
        arrival_times=arrival_times,
        decode_steps=args.decode_steps,
        vocab_size=serving.engine.model.vocab_size,
        seed=args.seed,
        priority_mix=_parse_priority_mix(args.priority_mix),
    )
    report = serving.serve_trace(trace)
    topology = "" if args.num_gpus == 1 else f", {args.num_gpus} GPUs ({args.placement})"
    if args.cpu_cache_capacity is not None:
        topology += (
            f", DRAM<={args.cpu_cache_capacity} ({args.cpu_cache_policy})"
        )
    slo = ""
    if args.prefill_chunk is not None:
        slo += f", chunk={args.prefill_chunk}"
    if args.preempt:
        slo += ", preemption"
    print(
        format_table(
            report.per_request_rows(),
            title=f"serving report: {args.strategy} on {args.model} @ "
            f"{args.cache_ratio:.0%} cache, batch<={args.max_batch_size}"
            f"{topology}{slo}",
        )
    )
    print(format_table([report.summary()], title="aggregate"))
    if len(report.priority_classes()) > 1:
        print(format_table(report.class_summary(), title="per-class SLO"))
    if args.num_gpus > 1:
        cache = serving.engine.runtime.cache
        device_rows = [
            {
                "device": device,
                "hit_rate": stats.hit_rate,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
            }
            for device, stats in enumerate(cache.per_device_stats())
        ]
        print(format_table(device_rows, title="per-device cache"))
    _print_tier_table(serving.engine)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.stage == "decode":
        workload = decode_workload(args.decode_steps, seed=args.seed)
    else:
        workload = prefill_workloads(args.prompt_len, seed=args.seed)[0]
    rows = []
    for strategy in available_strategies():
        result = run_workload(
            model=args.model,
            strategy=strategy,
            cache_ratio=args.cache_ratio,
            workload=workload,
            num_layers=args.num_layers,
            seed=args.seed,
        )
        row = {"strategy": strategy, "hit_rate": result.hit_rate}
        if args.stage == "decode":
            row["mean_tbt_s"] = result.mean_tbt
        else:
            row["ttft_s"] = result.ttft
        rows.append(row)
    metric = "mean_tbt_s" if args.stage == "decode" else "ttft_s"
    rows.sort(key=lambda r: r[metric])
    print(
        format_table(
            rows,
            title=f"{args.stage} comparison: {args.model} @ "
            f"{args.cache_ratio:.0%} cache (best first)",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = figures.FULL_SCALE if args.full else figures.QUICK_SCALE
    rows = _FIGURES[args.name](scale, args.seed)
    if args.name == "fig7":
        rows = add_speedup_column(
            rows, "ttft_s", group_columns=("model", "cache_ratio", "bucket")
        )
    elif args.name == "fig8":
        rows = add_speedup_column(rows, "mean_tbt_s")
    print(format_table(rows, title=args.name))
    return 0


def _split_csv(text: str | None) -> list[str] | None:
    """Split a comma-separated CLI axis into names (None stays None)."""
    if text is None:
        return None
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise ConfigError(f"empty comma-separated list {text!r}")
    return names


def _cmd_sweep(args: argparse.Namespace) -> int:
    # Imported lazily: only the sweep/scenarios commands need the
    # registry (and its built-in registrations).
    from repro.scenarios import run_sweep

    seeds_text = _split_csv(args.seeds)
    try:
        seeds = [int(s) for s in seeds_text] if seeds_text is not None else None
    except ValueError:
        raise ConfigError(f"bad --seeds value {args.seeds!r}; expected integers") from None
    predictors_text = _split_csv(args.predictors)
    predictors = (
        [None if name == "none" else name for name in predictors_text]
        if predictors_text is not None
        else None
    )
    report = run_sweep(
        _split_csv(args.scenarios),
        args.out,
        strategies=_split_csv(args.strategies),
        hardware=_split_csv(args.hardware),
        seeds=seeds,
        predictors=predictors,
        processes=args.processes,
        max_requests=args.requests,
        max_steps=args.steps,
        force=args.force,
        log=print,
    )
    print(format_table(report.rows(), title="sweep cells"))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, get_scenario

    rows = []
    for name in available_scenarios():
        spec = get_scenario(name)
        rows.append(
            {
                "scenario": name,
                "kind": spec.kind,
                "workload": spec.workload.kind,
                "strategy": spec.strategy,
                "hardware": spec.hardware,
                "seeds": len(spec.seeds),
                "description": spec.description,
            }
        )
    print(format_table(rows, title="registered scenarios"))
    return 0


def _cmd_info() -> int:
    print("model presets:")
    for name in sorted(MODEL_PRESETS):
        print(f"  {get_preset(name).describe()}")
    print("hardware presets:", ", ".join(sorted(HARDWARE_PRESETS)))
    print("strategies:", ", ".join(available_strategies()))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        return _cmd_info()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
