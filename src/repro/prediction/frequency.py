"""Static per-layer frequency prior over expert activations."""

from __future__ import annotations

import numpy as np

from repro.prediction.base import ExpertPredictor

__all__ = ["FrequencyPrior"]


class FrequencyPrior(ExpertPredictor):
    """Predict from per-layer activation frequencies alone.

    The same signal the kTransformers baseline pins experts with,
    recast as a predictor: each layer's activation counts, normalised,
    are that layer's predicted scores — regardless of what the current
    pass activated, so the prediction is identical at every distance.
    Cheap and workload-stable, but blind to step-to-step routing
    dynamics; it is the floor the transition statistics are measured
    against.
    """

    name = "frequency"

    def __init__(
        self, num_layers: int, num_experts: int, horizon: int = 4, **kwargs
    ) -> None:
        super().__init__(num_layers, num_experts, horizon=horizon, **kwargs)
        self._counts = np.zeros((self.num_layers, self.num_experts), dtype=np.int64)

    def _update(self, layer: int, actives: frozenset[int]) -> None:
        if actives:
            self._counts[layer, sorted(actives)] += 1

    def _predict_scores(self, layer: int, distance: int) -> np.ndarray | None:
        row = self._counts[layer + distance]
        total = int(row.sum())
        if total == 0:
            return None
        return row / float(total)
