"""Pluggable cross-layer expert-activation prediction.

The package behind ``EngineConfig.predictor``: deterministic
:class:`ExpertPredictor` implementations fit from routing observations
(``frequency`` — static per-layer priors; ``transition`` — per-layer
expert-to-expert transition statistics), composed with the engine's
gate-reuse heuristic through a :class:`ConfidenceGate` that only
changes scheduling when *calibrated* confidence clears a threshold.
See :mod:`repro.prediction.base` for the confidence model.
"""

from repro.errors import ConfigError
from repro.prediction.base import ExpertPredictor, Prediction
from repro.prediction.frequency import FrequencyPrior
from repro.prediction.gate import ConfidenceGate
from repro.prediction.transition import TransitionPredictor

__all__ = [
    "ExpertPredictor",
    "Prediction",
    "FrequencyPrior",
    "TransitionPredictor",
    "ConfidenceGate",
    "available_predictors",
    "make_predictor",
]

_PREDICTORS: dict[str, type[ExpertPredictor]] = {
    "frequency": FrequencyPrior,
    "transition": TransitionPredictor,
}


def available_predictors() -> tuple[str, ...]:
    """Registered predictor names, sorted."""
    return tuple(sorted(_PREDICTORS))


def make_predictor(
    name: str, num_layers: int, num_experts: int, horizon: int = 4, **kwargs
) -> ExpertPredictor:
    """Build a registered predictor by name."""
    predictor_cls = _PREDICTORS.get(name)
    if predictor_cls is None:
        known = ", ".join(available_predictors())
        raise ConfigError(f"unknown predictor {name!r} (known: {known})")
    return predictor_cls(num_layers, num_experts, horizon=horizon, **kwargs)
