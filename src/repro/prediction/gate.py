"""Confidence-gated composition of a predictor with gate-reuse scores."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.prediction.base import ExpertPredictor

__all__ = ["ConfidenceGate"]


class ConfidenceGate:
    """Mix predictor output into the engine's heuristic prefetch scores.

    The engine's existing signal — future layers' gates applied to the
    current hidden state — is accurate one or two layers out and decays
    fast. A predictor's statistics reach deeper but must *earn* trust.
    The gate arbitrates: per ``(layer, distance)`` it asks the wrapped
    predictor for a prediction and **fires only when the calibrated
    confidence clears ``threshold``**. When it fires it returns a blend
    of the (normalised) heuristic scores with the predictor's, weighted
    by ``blend * confidence``; otherwise the heuristic scores pass
    through byte-unchanged and the caller keeps its historical
    behaviour.

    Because every predictor confidence is strictly below 1,
    ``threshold=1.0`` can never fire — the oracle configuration the
    bit-identity tests pin the default path with.

    Parameters
    ----------
    predictor:
        The wrapped :class:`~repro.prediction.base.ExpertPredictor`.
    threshold:
        Minimum calibrated confidence before the gate fires.
    blend:
        Cap on the predictor's share of the mixed scores; the actual
        weight is ``blend * confidence``.
    """

    def __init__(
        self,
        predictor: ExpertPredictor,
        threshold: float = 0.6,
        blend: float = 0.5,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ConfigError(f"threshold must be in [0, 1], got {threshold}")
        if not 0.0 <= blend <= 1.0:
            raise ConfigError(f"blend must be in [0, 1], got {blend}")
        self.predictor = predictor
        self.threshold = float(threshold)
        self.blend = float(blend)

    @property
    def horizon(self) -> int:
        """Deepest distance the wrapped predictor reaches."""
        return self.predictor.horizon

    def observe(self, layer: int, experts) -> None:
        """Forward one activation observation to the predictor."""
        self.predictor.observe(layer, experts)

    def advise(
        self, layer: int, distance: int, heuristic_scores: np.ndarray
    ) -> tuple[np.ndarray, float | None]:
        """Gate one predicted layer's scores.

        Returns ``(scores, confidence)``. When the gate does not fire
        the heuristic scores come back unchanged (the same array) with
        ``confidence=None``; when it fires, the blended scores and the
        calibrated confidence that cleared the threshold.
        """
        prediction = self.predictor.predict(layer, distance)
        if prediction is None or prediction.confidence < self.threshold:
            return heuristic_scores, None
        heuristic = np.asarray(heuristic_scores, dtype=np.float64)
        total = float(heuristic.sum())
        if total > 0:
            heuristic = heuristic / total
        weight = self.blend * prediction.confidence
        mixed = (1.0 - weight) * heuristic + weight * prediction.scores
        return mixed, prediction.confidence

    def confident_depth(self, layer: int) -> int:
        """Deepest contiguous distance whose confidence clears the gate.

        The prefetcher extends its lookahead window to this depth
        (lead-time hint); 0 means no extension.
        """
        depth = 0
        for distance in range(1, self.horizon + 1):
            if self.predictor.confidence(layer, distance) < self.threshold:
                break
            depth = distance
        return depth

    def promotion_margin(self, base_margin: float, confidence: float) -> float:
        """DRAM-promotion admission margin for a gate-backed prefetch.

        Scales the strategy's speculative-insert margin down as
        confidence grows: a barely-over-threshold prediction must beat
        the DRAM victim by nearly the full margin, while a
        high-confidence one promotes almost unconditionally — the
        confidence-driven promotion lead-time knob.
        """
        return base_margin * (1.0 - confidence)
