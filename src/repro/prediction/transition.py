"""Per-layer expert-to-expert transition statistics as a predictor."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.prediction.base import ExpertPredictor

__all__ = ["TransitionPredictor"]


class TransitionPredictor(ExpertPredictor):
    """Predict from observed cross-layer activation transitions.

    For every source layer ``l`` and distance ``d <= horizon`` the
    predictor counts, within each forward pass, how often expert ``b``
    activated at layer ``l + d`` while expert ``a`` was active at
    layer ``l`` — the same statistic
    :func:`~repro.routing.statistics.expert_transition_counts` extracts
    from a recorded trace, fit online here. A prediction conditions on
    the *current* pass's activation set: the observed source experts'
    transition rows (each normalised to a distribution) are averaged,
    so the scores are sharper than a frequency prior whenever routing
    is history-dependent.
    """

    name = "transition"

    def __init__(
        self, num_layers: int, num_experts: int, horizon: int = 4, **kwargs
    ) -> None:
        super().__init__(num_layers, num_experts, horizon=horizon, **kwargs)
        #: ``_counts[d - 1, l, a, b]``: passes in which ``a`` was active
        #: at layer ``l`` and ``b`` at layer ``l + d``.
        self._counts = np.zeros(
            (self.horizon, self.num_layers, self.num_experts, self.num_experts),
            dtype=np.int64,
        )

    def _update(self, layer: int, actives: frozenset[int]) -> None:
        if not actives:
            return
        cols = np.asarray(sorted(actives), dtype=np.int64)
        for distance in range(1, self.horizon + 1):
            source = layer - distance
            if source < 0:
                break
            src_actives = self._pass_actives.get(source)
            if not src_actives:
                continue
            rows = np.asarray(sorted(src_actives), dtype=np.int64)
            self._counts[distance - 1, source][np.ix_(rows, cols)] += 1

    def transition_matrix(self, layer: int, distance: int) -> np.ndarray:
        """Row-normalised transition matrix for ``layer -> layer + distance``.

        Rows of experts observed active at ``layer`` (with at least one
        recorded transition) sum to exactly 1; unobserved rows are all
        zero.
        """
        if not 1 <= distance <= self.horizon:
            raise ConfigError(
                f"distance must be in [1, {self.horizon}], got {distance}"
            )
        if not 0 <= layer < self.num_layers - distance:
            raise ConfigError(
                f"layer must be in [0, {self.num_layers - distance}), got {layer}"
            )
        counts = self._counts[distance - 1, layer].astype(np.float64)
        sums = counts.sum(axis=1, keepdims=True)
        return np.divide(counts, sums, out=np.zeros_like(counts), where=sums > 0)

    def _predict_scores(self, layer: int, distance: int) -> np.ndarray | None:
        src_actives = self._pass_actives.get(layer)
        if not src_actives:
            return None
        counts = self._counts[distance - 1, layer]
        rows = np.asarray(sorted(src_actives), dtype=np.int64)
        sub = counts[rows].astype(np.float64)
        sums = sub.sum(axis=1, keepdims=True)
        observed = sums[:, 0] > 0
        if not np.any(observed):
            return None
        return (sub[observed] / sums[observed]).mean(axis=0)
