"""Pluggable cross-layer expert-activation predictors.

HybriMoE's prefetcher predicts one step of routing by reusing future
layers' gates on the current hidden state (paper §IV-C). LayerScope-
style analyses show activations are predictable *several* layers ahead
from routing history alone. :class:`ExpertPredictor` packages that
signal behind one interface: subclasses accumulate per-layer
activation observations online (or bulk-fit from a recorded
:class:`~repro.routing.trace.RoutingTrace`) and predict the activation
scores of a layer up to ``horizon`` layers ahead.

**Calibrated confidence.** Every prediction carries a confidence the
scheduler can gate on. It is the product of two factors, both
deterministic functions of the observation stream:

- *support* — ``n / (n + obs_prior)`` where ``n`` is how often the
  target layer has been observed. Monotone in the observation count
  and strictly below 1, so a fresh predictor is never trusted.
- *measured accuracy* — a per-distance EWMA of the predictor's own
  top-k recall, scored retroactively: when a layer's actual activation
  set arrives, the prediction the predictor *would have issued*
  ``distance`` layers earlier (from state prior to this pass's
  update) is compared against it. Starts at 0, so confidence is earned
  from evidence, never assumed.

Both factors are strictly below 1, hence so is every confidence — a
gate threshold of ``1.0`` can therefore never fire, which is the
equivalence oracle the bit-identity tests lean on.

Predictors hold no RNG: identical observation streams yield identical
predictions and confidences (property-test-enforced).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["Prediction", "ExpertPredictor"]


@dataclass(frozen=True)
class Prediction:
    """One cross-layer activation prediction.

    Attributes
    ----------
    layer:
        Target layer the prediction is about.
    distance:
        How many layers ahead of the observed layer the target sits.
    scores:
        Per-expert activation scores of the target layer, shape
        ``(num_experts,)``, non-negative. Positive mass appears only on
        experts the predictor has actually seen activated at the
        target layer (support ⊆ observed expert set).
    confidence:
        Calibrated confidence in ``[0, 1)`` — see the module docstring.
    """

    layer: int
    distance: int
    scores: np.ndarray
    confidence: float


class ExpertPredictor(ABC):
    """Observation bookkeeping + calibrated confidence for subclasses.

    Parameters
    ----------
    num_layers / num_experts:
        Model shape the predictor observes.
    horizon:
        Deepest lookahead distance predictions reach.
    obs_prior:
        Pseudo-count of the support factor ``n / (n + obs_prior)``:
        how many observations of a layer it takes to trust the
        statistics about half-way.
    accuracy_beta:
        EWMA step of the measured per-distance accuracy.
    """

    name: str = "?"

    def __init__(
        self,
        num_layers: int,
        num_experts: int,
        horizon: int = 4,
        obs_prior: float = 8.0,
        accuracy_beta: float = 0.25,
    ) -> None:
        if num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {num_layers}")
        if num_experts < 1:
            raise ConfigError(f"num_experts must be >= 1, got {num_experts}")
        if horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {horizon}")
        if obs_prior <= 0:
            raise ConfigError(f"obs_prior must be positive, got {obs_prior}")
        if not 0.0 < accuracy_beta <= 1.0:
            raise ConfigError(
                f"accuracy_beta must be in (0, 1], got {accuracy_beta}"
            )
        self.num_layers = int(num_layers)
        self.num_experts = int(num_experts)
        self.horizon = int(horizon)
        self.obs_prior = float(obs_prior)
        self.accuracy_beta = float(accuracy_beta)
        self._obs_count = np.zeros(self.num_layers, dtype=np.int64)
        # Indexed by distance (entry 0 unused).
        self._accuracy = np.zeros(self.horizon + 1, dtype=np.float64)
        #: Activation sets of the forward pass currently in flight,
        #: keyed by layer. Cleared when the layer index stops
        #: increasing (a new pass started).
        self._pass_actives: dict[int, frozenset[int]] = {}
        self._last_layer: int | None = None

    # ------------------------------------------------------------------
    # observation stream
    # ------------------------------------------------------------------
    def observe(self, layer: int, experts) -> None:
        """Record one layer's activated expert set.

        Layers of a forward pass must arrive in ascending order; a
        non-increasing layer index marks the start of a new pass.
        Before the counts are updated, the activation set scores the
        predictions earlier layers of this pass implied — the
        calibration signal behind :meth:`confidence`.
        """
        if not 0 <= layer < self.num_layers:
            raise ConfigError(
                f"layer {layer} out of range [0, {self.num_layers})"
            )
        actives = frozenset(int(e) for e in experts)
        if self._last_layer is not None and layer <= self._last_layer:
            self._pass_actives.clear()
        self._calibrate(layer, actives)
        self._update(layer, actives)
        self._pass_actives[layer] = actives
        self._obs_count[layer] += 1
        self._last_layer = layer

    def fit_trace(self, trace) -> None:
        """Bulk-fit from a recorded routing trace (the warmup phase).

        Replays the trace's per-step, per-layer activation sets through
        :meth:`observe`, so bulk fitting and online observation build
        byte-identical state — including the calibration EWMAs.
        """
        for step in trace.steps:
            for routing in step.layers:
                self.observe(routing.layer, np.flatnonzero(routing.loads > 0))

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, layer: int, distance: int) -> Prediction | None:
        """Predict layer ``layer + distance``'s activation scores.

        Returns ``None`` when the distance is out of the horizon, the
        target layer does not exist, or the predictor has no data yet.
        """
        target = layer + distance
        if (
            distance < 1
            or distance > self.horizon
            or not 0 <= layer < self.num_layers
            or target >= self.num_layers
        ):
            return None
        scores = self._predict_scores(layer, distance)
        if scores is None:
            return None
        return Prediction(
            layer=target,
            distance=distance,
            scores=scores,
            confidence=self.confidence(layer, distance),
        )

    def confidence(self, layer: int, distance: int) -> float:
        """Calibrated confidence for predicting ``distance`` ahead.

        Strictly below 1 by construction (see the module docstring);
        0 whenever the target is out of range.
        """
        target = layer + distance
        if distance < 1 or distance > self.horizon or target >= self.num_layers:
            return 0.0
        n = float(self._obs_count[target])
        support = n / (n + self.obs_prior)
        return support * float(self._accuracy[distance])

    def calibrated_accuracy(self) -> dict[int, float]:
        """Measured per-distance prediction accuracy (recall EWMA)."""
        return {
            distance: float(self._accuracy[distance])
            for distance in range(1, self.horizon + 1)
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _calibrate(self, layer: int, actives: frozenset[int]) -> None:
        """Score this pass's earlier implied predictions of ``layer``.

        Runs *before* ``actives`` enters the counts, so each scored
        prediction is out-of-sample with respect to the arriving
        observation.
        """
        if not actives:
            return
        k = len(actives)
        for distance in range(1, self.horizon + 1):
            source = layer - distance
            if source not in self._pass_actives:
                continue
            scores = self._predict_scores(source, distance)
            if scores is None:
                continue
            order = np.argsort(-scores, kind="stable")[:k]
            predicted = {int(e) for e in order if scores[e] > 0}
            recall = len(predicted & actives) / k
            self._accuracy[distance] += self.accuracy_beta * (
                recall - self._accuracy[distance]
            )

    @abstractmethod
    def _update(self, layer: int, actives: frozenset[int]) -> None:
        """Fold one activation observation into the subclass statistics."""

    @abstractmethod
    def _predict_scores(self, layer: int, distance: int) -> np.ndarray | None:
        """Scores over the target layer's experts, or None without data.

        Called with an in-range ``(layer, distance)`` pair only. The
        returned array must be non-negative with positive mass confined
        to experts observed activated at the target layer.
        """
