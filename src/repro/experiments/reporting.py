"""Result tabulation: ASCII tables, speedups, CSV/JSON export."""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.errors import ConfigError

__all__ = [
    "format_table",
    "add_speedup_column",
    "geometric_mean",
    "save_csv",
    "save_json",
]


def _render(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.3e}"
    return str(value)


def format_table(
    rows: list[dict],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render row dictionaries as a fixed-width ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, rule, body])
    return "\n".join(parts)


def add_speedup_column(
    rows: list[dict],
    value_column: str,
    baseline_strategy: str = "ktransformers",
    group_columns: tuple[str, ...] = ("model", "cache_ratio"),
    strategy_column: str = "strategy",
    speedup_column: str = "speedup",
) -> list[dict]:
    """Annotate rows with speedup relative to a baseline strategy.

    Speedup is ``baseline_value / value`` within each group (higher is
    better for latency metrics), matching the paper's "speedup vs
    kTransformers" presentation in Figs. 7/8.
    """
    baselines: dict[tuple, float] = {}
    for row in rows:
        if row.get(strategy_column) == baseline_strategy:
            key = tuple(row.get(col) for col in group_columns)
            baselines[key] = float(row[value_column])
    annotated = []
    for row in rows:
        new_row = dict(row)
        key = tuple(row.get(col) for col in group_columns)
        base = baselines.get(key)
        if base is not None and float(row[value_column]) > 0:
            new_row[speedup_column] = base / float(row[value_column])
        annotated.append(new_row)
    return annotated


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the conventional aggregate for speedups)."""
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def save_json(rows: list[dict], path: str | Path) -> None:
    """Write rows to a JSON file (numpy scalars coerced to Python)."""
    def _coerce(value):
        if hasattr(value, "item"):
            return value.item()
        return value

    payload = [{k: _coerce(v) for k, v in row.items()} for row in rows]
    Path(path).write_text(json.dumps(payload, indent=2))


def save_csv(rows: list[dict], path: str | Path) -> None:
    """Write rows to CSV with the union of all keys as header."""
    if not rows:
        Path(path).write_text("")
        return
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
