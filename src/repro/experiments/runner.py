"""Single-run driver shared by all experiments."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.engine.engine import EngineConfig
from repro.engine.factory import make_engine
from repro.engine.metrics import GenerationResult
from repro.models.model import ReferenceMoEModel
from repro.models.presets import get_preset
from repro.workloads.generator import WorkloadSpec

__all__ = ["run_workload", "cached_model"]


@lru_cache(maxsize=16)
def cached_model(
    model_name: str, num_layers: int | None, seed: int
) -> ReferenceMoEModel:
    """Memoised functional-model construction.

    Model weights are immutable and decode state lives outside the
    model, so engines can safely share one instance; the grids in
    Figs. 7/8 reuse each (model, seed) dozens of times.
    """
    config = get_preset(model_name, num_layers=num_layers)
    return ReferenceMoEModel(config, seed=seed)


def run_workload(
    model: str,
    strategy: str,
    cache_ratio: float,
    workload: WorkloadSpec,
    num_layers: int | None = None,
    seed: int = 0,
    hardware: str = "paper",
    strategy_kwargs: dict | None = None,
    engine_config: EngineConfig | None = None,
) -> GenerationResult:
    """Run one workload on a fresh engine and return its metrics.

    Every run constructs a new engine (cold clock, freshly warmed
    cache) so results are independent, as the paper's per-configuration
    measurements are.
    """
    if engine_config is None:
        engine_config = EngineConfig(cache_ratio=cache_ratio, seed=seed)
    engine = make_engine(
        model=cached_model(model, num_layers, seed),
        strategy=strategy,
        cache_ratio=cache_ratio,
        hardware=hardware,
        num_layers=num_layers,
        seed=seed,
        engine_config=engine_config,
        strategy_kwargs=strategy_kwargs or {},
    )
    return engine.generate(
        np.asarray(workload.prompt_tokens), decode_steps=workload.decode_steps
    )
