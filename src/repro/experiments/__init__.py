"""Experiment harness regenerating every paper table and figure.

Each public function in :mod:`repro.experiments.figures` corresponds to
one artifact of the paper's evaluation (Fig. 3a-f, Fig. 7, Fig. 8,
Fig. 9, Table III) and returns plain row dictionaries;
:mod:`repro.experiments.reporting` renders them as the tables the
benchmark harness prints and EXPERIMENTS.md records.
"""

from repro.experiments.figures import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    ablation_mrs_parameters,
    ablation_prefetch_depth,
    ablation_scheduler_variants,
    fig3a_activation_cdf,
    fig3b_reuse_probability,
    fig3c_workload_distribution,
    fig3d_existing_methods,
    fig3e_expert_count_sweep,
    fig3f_workload_sweep,
    fig7_prefill,
    fig8_decode,
    fig9_cache_hit_rate,
    table3_ablation,
)
from repro.experiments.reporting import (
    add_speedup_column,
    format_table,
    geometric_mean,
    save_csv,
    save_json,
)
from repro.experiments.runner import run_workload

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "fig3a_activation_cdf",
    "fig3b_reuse_probability",
    "fig3c_workload_distribution",
    "fig3d_existing_methods",
    "fig3e_expert_count_sweep",
    "fig3f_workload_sweep",
    "fig7_prefill",
    "fig8_decode",
    "fig9_cache_hit_rate",
    "table3_ablation",
    "ablation_scheduler_variants",
    "ablation_prefetch_depth",
    "ablation_mrs_parameters",
    "run_workload",
    "format_table",
    "add_speedup_column",
    "geometric_mean",
    "save_csv",
    "save_json",
]
