"""One experiment definition per paper table/figure.

Every function returns a list of flat row dictionaries ready for
:func:`repro.experiments.reporting.format_table`. Functions accept an
:class:`ExperimentScale` so the same code serves CI-speed smoke runs
(``QUICK_SCALE``) and the full paper grid (``FULL_SCALE``). Layer-count
reduction preserves per-layer behaviour (scheduling decisions are
per-layer); it only shortens the pipeline.

Experiment index (see DESIGN.md §4):

=========  ==========================================================
fig3a      activation CDF, experts vs synthetic skewed neurons
fig3b      expert reuse probability by score rank
fig3c      prefill expert-load distribution
fig3d      latency of llama.cpp / AdapMoE / kTransformers
fig3e      CPU vs GPU time vs expert count at fixed load
fig3f      CPU vs GPU time vs workload size
fig7       prefill TTFT grid (models x ratios x buckets x frameworks)
fig8       decode TBT grid (models x ratios x frameworks)
fig9       MRS vs LRU cache hit rate vs capacity
table3     component ablation (scheduling / prefetching / caching)
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.base import make_policy
from repro.cache.manager import ExpertCache
from repro.engine.engine import EngineConfig
from repro.errors import ConfigError
from repro.experiments.runner import run_workload
from repro.hardware.cost_model import AnalyticCostModel
from repro.hardware.platform_presets import get_hardware_preset
from repro.models.model import ReferenceMoEModel
from repro.models.presets import get_preset
from repro.routing.generator import generate_trace
from repro.routing.statistics import (
    activation_cdf,
    expert_activation_frequency,
    prefill_load_distribution,
    reuse_probability_by_rank,
    synthetic_neuron_activation_cdf,
)
from repro.routing.trace import RoutingTrace
from repro.rng import derive_rng
from repro.workloads.generator import decode_workload, prefill_workloads

__all__ = [
    "ExperimentScale",
    "QUICK_SCALE",
    "FULL_SCALE",
    "fig3a_activation_cdf",
    "fig3b_reuse_probability",
    "fig3c_workload_distribution",
    "fig3d_existing_methods",
    "fig3e_expert_count_sweep",
    "fig3f_workload_sweep",
    "fig7_prefill",
    "fig8_decode",
    "fig9_cache_hit_rate",
    "table3_ablation",
    "ablation_scheduler_variants",
    "ablation_prefetch_depth",
    "ablation_mrs_parameters",
]

#: Frameworks compared in Figs. 7/8, in the paper's legend order.
PAPER_FRAMEWORKS = ("llamacpp", "adapmoe", "ktransformers", "hybrimoe")
#: Models evaluated, in Fig. 7's row order.
PAPER_MODELS = ("deepseek", "mixtral", "qwen2")
#: Cache ratios of the end-to-end grids.
PAPER_RATIOS = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class ExperimentScale:
    """Grid sizing shared by the end-to-end experiments."""

    num_layers: int | None
    prefill_buckets: tuple[int, ...]
    decode_steps: int
    trace_decode_steps: int

    def __post_init__(self) -> None:
        if self.decode_steps <= 0 or self.trace_decode_steps <= 1:
            raise ConfigError("scale requires positive decode step counts")


#: CI-sized grid: reduced layers, two buckets, short decodes.
QUICK_SCALE = ExperimentScale(
    num_layers=6, prefill_buckets=(32, 128), decode_steps=8, trace_decode_steps=48
)
#: Paper-sized grid (full layer counts, all buckets).
FULL_SCALE = ExperimentScale(
    num_layers=None,
    prefill_buckets=(32, 128, 512, 1024),
    decode_steps=32,
    trace_decode_steps=256,
)


def _make_trace(
    model_name: str, scale: ExperimentScale, seed: int, prompt_len: int = 64
) -> RoutingTrace:
    config = get_preset(model_name, num_layers=scale.num_layers)
    model = ReferenceMoEModel(config, seed=seed)
    rng = derive_rng(seed, "figures", "trace-prompt", model_name)
    prompt = rng.integers(0, model.vocab_size, size=prompt_len)
    return generate_trace(
        model, prompt, decode_steps=scale.trace_decode_steps, seed=seed
    )


# ----------------------------------------------------------------------
# Fig. 3 — motivation analyses
# ----------------------------------------------------------------------
def fig3a_activation_cdf(
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
    curve_points: int = 11,
) -> list[dict]:
    """Cumulative activation frequency: experts vs skewed neurons.

    Rows give the cumulative activation share at evenly spaced expert
    proportions for Mixtral experts, DeepSeek experts, and the
    synthetic OPT-like neuron baseline.
    """
    curves: dict[str, tuple[np.ndarray, np.ndarray]] = {
        "opt-neuron": synthetic_neuron_activation_cdf(seed=seed)
    }
    for model_name in ("mixtral", "deepseek"):
        trace = _make_trace(model_name, scale, seed)
        curves[f"{model_name}-expert"] = activation_cdf(trace)
    rows = []
    for fraction in np.linspace(0.0, 1.0, curve_points):
        row: dict = {"expert_proportion": float(fraction)}
        for name, (proportion, cumulative) in curves.items():
            row[name] = float(np.interp(fraction, proportion, cumulative))
        rows.append(row)
    return rows


def fig3b_reuse_probability(
    model_name: str = "deepseek",
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """Reuse probability of experts by score rank (decode steps)."""
    trace = _make_trace(model_name, scale, seed)
    reuse = reuse_probability_by_rank(trace)
    return [
        {"rank": rank, "reuse_probability": float(prob)}
        for rank, prob in enumerate(reuse)
    ]


def fig3c_workload_distribution(
    model_name: str = "deepseek",
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
    prefill_len: int = 128,
    layer: int = 0,
) -> list[dict]:
    """Per-expert token loads in one prefill forward, sorted desc."""
    config = get_preset(model_name, num_layers=scale.num_layers)
    model = ReferenceMoEModel(config, seed=seed)
    rng = derive_rng(seed, "figures", "fig3c-prompt")
    prompt = rng.integers(0, model.vocab_size, size=prefill_len)
    trace = generate_trace(model, prompt, decode_steps=0, seed=seed)
    loads = prefill_load_distribution(trace, layer=layer)
    return [
        {"expert_rank": rank, "load": int(load)} for rank, load in enumerate(loads)
    ]


def fig3d_existing_methods(
    scale: ExperimentScale = QUICK_SCALE,
    cache_ratio: float = 0.5,
    seed: int = 0,
) -> list[dict]:
    """Latency of the three existing frameworks on the paper's probes.

    Scenarios: Qwen2 prefill 128, Mixtral prefill 128, Mixtral decode
    10 tokens (Fig. 3d), for llama.cpp / AdapMoE / kTransformers.
    """
    scenarios = [
        ("qwen2-prefill-128", "qwen2", "prefill", 128, 0),
        ("mixtral-prefill-128", "mixtral", "prefill", 128, 0),
        ("mixtral-decode-10", "mixtral", "decode", 16, 10),
    ]
    rows = []
    for label, model_name, stage, prompt_len, decode_steps in scenarios:
        for strategy in ("llamacpp", "adapmoe", "ktransformers"):
            workload = decode_workload(
                decode_steps or 1, seed=seed
            ) if stage == "decode" else prefill_workloads(prompt_len, seed=seed)[0]
            if stage == "decode":
                workload = decode_workload(decode_steps, seed=seed)
            result = run_workload(
                model=model_name,
                strategy=strategy,
                cache_ratio=cache_ratio,
                workload=workload,
                num_layers=scale.num_layers,
                seed=seed,
            )
            latency = result.mean_tbt if stage == "decode" else result.ttft
            rows.append(
                {
                    "scenario": label,
                    "strategy": strategy,
                    "stage": stage,
                    "latency_s": float(latency),
                }
            )
    return rows


def fig3e_expert_count_sweep(
    model_name: str = "deepseek",
    hardware: str = "paper",
    max_experts: int = 6,
    load_per_expert: int = 4,
) -> list[dict]:
    """CPU vs GPU total time for 1..N experts at fixed per-expert load.

    Reproduces the CPU overlap effect: the first CPU expert pays the
    cold-cache warmup, subsequent ones amortise it, while GPU time
    scales linearly in expert count (one kernel each).
    """
    config = get_preset(model_name)
    cost = AnalyticCostModel(get_hardware_preset(hardware))
    shape = config.routed_expert_shape
    rows = []
    for count in range(1, max_experts + 1):
        cpu_total = sum(
            cost.cpu_expert_time(shape, load_per_expert, first_task=index == 0)
            for index in range(count)
        )
        gpu_total = count * cost.gpu_expert_time(shape, load_per_expert)
        rows.append(
            {
                "experts": count,
                "cpu_time_s": float(cpu_total),
                "gpu_time_s": float(gpu_total),
            }
        )
    return rows


def fig3f_workload_sweep(
    model_name: str = "deepseek",
    hardware: str = "paper",
    workloads: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
) -> list[dict]:
    """CPU vs GPU single-expert time across workload sizes.

    GPU time stays flat until the FLOP roofline; CPU time grows
    linearly almost immediately — the asymmetry all scheduling
    decisions ride on.
    """
    config = get_preset(model_name)
    cost = AnalyticCostModel(get_hardware_preset(hardware))
    shape = config.routed_expert_shape
    return [
        {
            "workload": tokens,
            "cpu_time_s": float(cost.cpu_expert_time(shape, tokens)),
            "gpu_time_s": float(cost.gpu_expert_time(shape, tokens)),
        }
        for tokens in workloads
    ]


# ----------------------------------------------------------------------
# Fig. 7 / Fig. 8 — end-to-end grids
# ----------------------------------------------------------------------
def fig7_prefill(
    models: tuple[str, ...] = PAPER_MODELS,
    ratios: tuple[float, ...] = PAPER_RATIOS,
    strategies: tuple[str, ...] = PAPER_FRAMEWORKS,
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """Prefill TTFT across models, cache ratios and input lengths."""
    rows = []
    for model_name in models:
        for ratio in ratios:
            for bucket in scale.prefill_buckets:
                workload = prefill_workloads(bucket, seed=seed)[0]
                for strategy in strategies:
                    result = run_workload(
                        model=model_name,
                        strategy=strategy,
                        cache_ratio=ratio,
                        workload=workload,
                        num_layers=scale.num_layers,
                        seed=seed,
                    )
                    rows.append(
                        {
                            "model": model_name,
                            "cache_ratio": ratio,
                            "bucket": bucket,
                            "prompt_len": workload.prompt_len,
                            "strategy": strategy,
                            "ttft_s": float(result.ttft),
                            "hit_rate": float(result.hit_rate),
                        }
                    )
    return rows


def fig8_decode(
    models: tuple[str, ...] = PAPER_MODELS,
    ratios: tuple[float, ...] = PAPER_RATIOS,
    strategies: tuple[str, ...] = PAPER_FRAMEWORKS,
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """Decode TBT across models and cache ratios."""
    rows = []
    for model_name in models:
        for ratio in ratios:
            workload = decode_workload(scale.decode_steps, seed=seed)
            for strategy in strategies:
                result = run_workload(
                    model=model_name,
                    strategy=strategy,
                    cache_ratio=ratio,
                    workload=workload,
                    num_layers=scale.num_layers,
                    seed=seed,
                )
                rows.append(
                    {
                        "model": model_name,
                        "cache_ratio": ratio,
                        "strategy": strategy,
                        "mean_tbt_s": float(result.mean_tbt),
                        "decode_hit_rate": float(result.decode_hit_rate()),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 9 — cache policy comparison via trace replay
# ----------------------------------------------------------------------
def replay_cache_hit_rate(
    trace: RoutingTrace,
    capacity: int,
    policy_name: str,
    mrs_alpha: float = 0.7,
) -> float:
    """Replay a routing trace through a cache and measure decode hits.

    Misses insert the expert (modelling the on-demand load), exactly
    the access pattern Fig. 9 isolates. The prefill step warms the
    cache; only decode accesses count.
    """
    if capacity <= 0:
        raise ConfigError(f"capacity must be positive, got {capacity}")
    if policy_name == "mrs":
        policy = make_policy(
            "mrs", alpha=mrs_alpha, top_p=2 * trace.num_activated
        )
    else:
        policy = make_policy(policy_name)
    cache = ExpertCache(capacity, policy)

    counts = expert_activation_frequency(trace)
    ranking = sorted(
        (
            (layer, expert)
            for layer in range(trace.num_layers)
            for expert in range(trace.num_experts)
        ),
        key=lambda key: (-counts[key[0], key[1]], key[0], key[1]),
    )
    cache.warm_fill(ranking)

    decode_hits = 0
    decode_accesses = 0
    for step in trace.steps:
        for routing in step.layers:
            cache.observe_scores(routing.layer, routing.mean_scores)
            for expert in routing.activated():
                key = (routing.layer, expert)
                hit = cache.access(key)
                if not step.is_prefill:
                    decode_accesses += 1
                    decode_hits += int(hit)
                if not hit:
                    cache.insert(key)
    if decode_accesses == 0:
        raise ConfigError("trace has no decode accesses")
    return decode_hits / decode_accesses


def fig9_cache_hit_rate(
    models: tuple[str, ...] = PAPER_MODELS,
    percentages: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7),
    policies: tuple[str, ...] = ("lru", "mrs"),
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """MRS vs LRU hit rates across cached-expert percentages."""
    rows = []
    for model_name in models:
        trace = _make_trace(model_name, scale, seed)
        total = trace.num_layers * trace.num_experts
        for percentage in percentages:
            capacity = max(1, int(round(percentage * total)))
            for policy_name in policies:
                hit_rate = replay_cache_hit_rate(trace, capacity, policy_name)
                rows.append(
                    {
                        "model": model_name,
                        "cached_percent": percentage,
                        "policy": policy_name,
                        "hit_rate": float(hit_rate),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Table III — component ablation
# ----------------------------------------------------------------------
#: Table III rows: configuration name -> HybriMoE component toggles.
ABLATION_CONFIGS = {
    "baseline": {"scheduling": False, "prefetching": False, "caching": False},
    "baseline+scheduling": {"scheduling": True, "prefetching": False, "caching": False},
    "baseline+prefetching": {"scheduling": False, "prefetching": True, "caching": False},
    "baseline+caching": {"scheduling": False, "prefetching": False, "caching": True},
    "all": {"scheduling": True, "prefetching": True, "caching": True},
}


def table3_ablation(
    model_name: str = "qwen2",
    cache_ratio: float = 0.25,
    scale: ExperimentScale = QUICK_SCALE,
    prefill_len: int = 128,
    seed: int = 0,
    configs: dict[str, dict] | None = None,
) -> list[dict]:
    """Speedup breakdown of the three techniques (paper Table III).

    The baseline configuration reproduces kTransformers behaviour; each
    row switches on one component, the last all three.
    """
    configs = configs or ABLATION_CONFIGS
    prefill = prefill_workloads(prefill_len, seed=seed)[0]
    decode = decode_workload(scale.decode_steps, seed=seed)
    rows = []
    baseline_prefill = baseline_decode = None
    for config_name, toggles in configs.items():
        prefill_result = run_workload(
            model=model_name,
            strategy="hybrimoe",
            cache_ratio=cache_ratio,
            workload=prefill,
            num_layers=scale.num_layers,
            seed=seed,
            strategy_kwargs=dict(toggles),
        )
        decode_result = run_workload(
            model=model_name,
            strategy="hybrimoe",
            cache_ratio=cache_ratio,
            workload=decode,
            num_layers=scale.num_layers,
            seed=seed,
            strategy_kwargs=dict(toggles),
        )
        prefill_latency = float(prefill_result.ttft)
        decode_latency = float(decode_result.mean_tbt)
        if config_name == "baseline":
            baseline_prefill = prefill_latency
            baseline_decode = decode_latency
        rows.append(
            {
                "config": config_name,
                "prefill_latency_s": prefill_latency,
                "decode_latency_s": decode_latency,
                "prefill_speedup": (
                    baseline_prefill / prefill_latency if baseline_prefill else 1.0
                ),
                "decode_speedup": (
                    baseline_decode / decode_latency if baseline_decode else 1.0
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Extra ablations (DESIGN.md §5) — design choices beyond the paper's
# ----------------------------------------------------------------------
def ablation_scheduler_variants(
    model_name: str = "deepseek",
    cache_ratio: float = 0.25,
    scale: ExperimentScale = QUICK_SCALE,
    prefill_len: int = 128,
    seed: int = 0,
) -> list[dict]:
    """Transfer search and CPU stealing, toggled independently."""
    from repro.core.hybrid_scheduler import SchedulerConfig

    variants = {
        "search+steal": SchedulerConfig(search_transfers=True, allow_cpu_steal=True),
        "search-only": SchedulerConfig(search_transfers=True, allow_cpu_steal=False),
        "extremes+steal": SchedulerConfig(search_transfers=False, allow_cpu_steal=True),
        "extremes-only": SchedulerConfig(search_transfers=False, allow_cpu_steal=False),
    }
    prefill = prefill_workloads(prefill_len, seed=seed)[0]
    decode = decode_workload(scale.decode_steps, seed=seed)
    rows = []
    for name, scheduler_config in variants.items():
        engine_config = EngineConfig(
            cache_ratio=cache_ratio, seed=seed, scheduler=scheduler_config
        )
        prefill_result = run_workload(
            model=model_name,
            strategy="hybrimoe",
            cache_ratio=cache_ratio,
            workload=prefill,
            num_layers=scale.num_layers,
            seed=seed,
            engine_config=engine_config,
        )
        decode_result = run_workload(
            model=model_name,
            strategy="hybrimoe",
            cache_ratio=cache_ratio,
            workload=decode,
            num_layers=scale.num_layers,
            seed=seed,
            engine_config=engine_config,
        )
        rows.append(
            {
                "variant": name,
                "prefill_latency_s": float(prefill_result.ttft),
                "decode_latency_s": float(decode_result.mean_tbt),
            }
        )
    return rows


def ablation_prefetch_depth(
    model_name: str = "deepseek",
    cache_ratio: float = 0.25,
    depths: tuple[int, ...] = (1, 2, 3),
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """Impact of the prefetch lookahead depth (paper fixes 3)."""
    decode = decode_workload(scale.decode_steps, seed=seed)
    rows = []
    for depth in depths:
        engine_config = EngineConfig(
            cache_ratio=cache_ratio, seed=seed, prefetch_lookahead=depth
        )
        result = run_workload(
            model=model_name,
            strategy="hybrimoe",
            cache_ratio=cache_ratio,
            workload=decode,
            num_layers=scale.num_layers,
            seed=seed,
            engine_config=engine_config,
        )
        rows.append(
            {
                "lookahead": depth,
                "decode_latency_s": float(result.mean_tbt),
                "decode_hit_rate": float(result.decode_hit_rate()),
            }
        )
    return rows


def ablation_mrs_parameters(
    model_name: str = "deepseek",
    cached_percent: float = 0.3,
    alphas: tuple[float, ...] = (0.1, 0.3, 0.5, 0.9),
    top_p_factors: tuple[int, ...] = (1, 2, 4),
    scale: ExperimentScale = QUICK_SCALE,
    seed: int = 0,
) -> list[dict]:
    """MRS sensitivity to alpha and the top-p accumulation width.

    The paper sets ``p = 2 * num_activated`` (§IV-D); this sweep shows
    the neighbourhood of that choice via trace replay.
    """
    trace = _make_trace(model_name, scale, seed)
    total = trace.num_layers * trace.num_experts
    capacity = max(1, int(round(cached_percent * total)))
    rows = []
    for alpha in alphas:
        for factor in top_p_factors:
            policy = make_policy(
                "mrs", alpha=alpha, top_p=factor * trace.num_activated
            )
            cache = ExpertCache(capacity, policy)
            counts = expert_activation_frequency(trace)
            ranking = sorted(
                (
                    (layer, expert)
                    for layer in range(trace.num_layers)
                    for expert in range(trace.num_experts)
                ),
                key=lambda key: (-counts[key[0], key[1]], key[0], key[1]),
            )
            cache.warm_fill(ranking)
            hits = accesses = 0
            for step in trace.steps:
                for routing in step.layers:
                    cache.observe_scores(routing.layer, routing.mean_scores)
                    for expert in routing.activated():
                        key = (routing.layer, expert)
                        hit = cache.access(key)
                        if not step.is_prefill:
                            accesses += 1
                            hits += int(hit)
                        if not hit:
                            cache.insert(key)
            rows.append(
                {
                    "alpha": alpha,
                    "top_p_factor": factor,
                    "hit_rate": hits / accesses if accesses else 0.0,
                }
            )
    return rows
