"""Admission and continuous batching for the serving loop.

The scheduler implements iteration-level ("continuous") batching in the
style of Orca/vLLM, adapted to the simulated hybrid platform:

- **FCFS admission** — queued requests are admitted in arrival order,
  each running its prefill as a dedicated step (prefill-prioritised:
  new work joins the decode batch at the next fused step);
- **fused decode** — all running requests advance one token per step in
  a single batched forward pass, so the hybrid scheduler, MRS cache and
  prefetcher see the *merged* expert working set of the whole batch;
- **work conservation with idle jump** — when nothing is running and no
  request has arrived yet, the head-of-line request is admitted with a
  ``not_before`` floor at its arrival instant; the discrete-event clock
  simply idles up to it.

Decisions are pure functions of ``(now, queue, num_running)`` so the
policy is unit-testable without an engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.request import Request

__all__ = ["ServingConfig", "Action", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop.

    Attributes
    ----------
    max_batch_size:
        Maximum number of concurrently decoding requests (the fused
        decode step's batch size ceiling).
    decode_token_source:
        ``"sampled"`` (default, matches ``InferenceEngine.generate``) or
        ``"greedy"``.
    """

    max_batch_size: int = 8
    decode_token_source: str = "sampled"

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.decode_token_source not in ("sampled", "greedy"):
            raise ConfigError(
                f"decode_token_source must be 'sampled' or 'greedy', got "
                f"{self.decode_token_source!r}"
            )


@dataclass(frozen=True)
class Action:
    """One scheduling decision for the next engine iteration.

    ``kind`` is ``"admit"`` (run ``request``'s prefill, starting no
    earlier than ``not_before``) or ``"decode"`` (advance every running
    request one token in a fused step).
    """

    kind: str
    request: "Request | None" = None
    not_before: float = 0.0


class ContinuousBatchingScheduler:
    """FCFS admission + iteration-level batching policy."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()

    def next_action(
        self,
        now: float,
        queued: "Sequence[Request]",
        num_running: int,
    ) -> Action | None:
        """Decide the next iteration given queue/batch occupancy.

        Parameters
        ----------
        now:
            Current simulated time (the clock's compute frontier).
        queued:
            Pending requests in arrival order (head first).
        num_running:
            Requests currently in the decode batch.

        Returns
        -------
        Action or None
            ``None`` when there is nothing left to do (loop ends).
        """
        if queued and num_running < self.config.max_batch_size:
            head = queued[0]
            if head.arrival_time <= now or num_running == 0:
                return Action(
                    kind="admit",
                    request=head,
                    not_before=max(now, head.arrival_time),
                )
        if num_running > 0:
            return Action(kind="decode")
        return None
