"""Admission and continuous batching for the serving loop.

The scheduler implements iteration-level ("continuous") batching in the
style of Orca/vLLM, adapted to the simulated hybrid platform:

- **priority-then-FCFS admission** — queued requests are admitted by
  priority class first (``interactive`` before ``batch``), then arrival
  order within a class; with a single class this degenerates to pure
  FCFS, bit-identical to the historical policy;
- **fused decode** — all running requests advance one token per step in
  a single batched forward pass, so the hybrid scheduler, MRS cache and
  prefetcher see the *merged* expert working set of the whole batch;
- **chunked prefill** — with ``prefill_chunk_tokens`` set, a long
  prompt admitted while an SLO-class request (any class above the
  default) decodes prefills in bounded slices that *ride the fused
  decode steps* (one hybrid step per slice), so a long prompt can no
  longer head-of-line-block an SLO-class decoder for its whole
  prefill, and the slice's expert work amortises with the decode
  batch's plan instead of paying dedicated extra steps;
- **cooperative preemption** — with ``preemption`` on, an arrived
  higher-priority request may pause the lowest-priority decoding
  request when the batch is full; the victim's decode state survives
  untouched and it resumes (no recompute) once capacity frees up;
- **work conservation with idle jump** — when nothing is running and no
  request has arrived yet, the earliest-arriving request is admitted
  with a ``not_before`` floor at its arrival instant; the
  discrete-event clock simply idles up to it.

Decisions are pure functions of ``(now, queue, running, prefilling,
preempted)`` so the policy is unit-testable without an engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.request import Request

__all__ = ["ServingConfig", "Action", "ContinuousBatchingScheduler"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop.

    Attributes
    ----------
    max_batch_size:
        Maximum number of concurrently decoding requests (the fused
        decode step's batch size ceiling). A request mid-chunked-prefill
        counts against the ceiling — it will decode as soon as its
        prefill completes.
    decode_token_source:
        ``"sampled"`` (default, matches ``InferenceEngine.generate``) or
        ``"greedy"``.
    prefill_chunk_tokens:
        Split a prompt longer than this many tokens into prefill
        slices of at most this size whenever an **SLO-class** request
        (any class above the default) is decoding — whatever the
        admitted prompt's own class; each slice rides the next fused
        decode step as one hybrid batch, bounding the protected
        decoder's stall to a slice's worth of prefill work.
        Default-class decoders eat the whole-prompt stall (so a
        default-class-only run never pays slice overhead), and with
        the decode batch drained mid-prefill the remaining prompt runs
        as one step. ``None`` (default) always runs the whole prefill
        as one dedicated step — the historical behaviour.
    preemption:
        Allow an *arrived* strictly-higher-priority queued request to
        pause the lowest-priority decoding request when the batch is
        full. Off by default.
    request_timeout_s:
        Per-request end-to-end budget in trace-relative seconds,
        measured from the request's arrival. A request still unfinished
        when the budget elapses is aborted at the next step boundary
        (terminal status ``TIMED_OUT``): its partial work is released,
        but cache residency earned on its behalf stays — warmed experts
        are not un-warmed. ``None`` (default) disables timeouts.
    shed_queue_depth:
        Overload-shedding high watermark: when the number of *arrived*
        queued requests reaches this depth at a step boundary, requests
        are refused admission (terminal status ``SHED``) until the
        backlog drops to ``shed_resume_depth``. Shedding picks the
        lowest priority class first and the newest arrival within a
        class, so interactive requests shed last. ``None`` (default)
        disables shedding.
    shed_resume_depth:
        Overload-shedding low watermark — the backlog depth a shed
        sweep drains down to. The high→low band is the hysteresis:
        one sweep sheds a batch, then admission runs normally until
        the backlog climbs back to the high watermark, instead of
        oscillating one request at a time around a single threshold.
        Defaults to half of ``shed_queue_depth``.
    """

    max_batch_size: int = 8
    decode_token_source: str = "sampled"
    prefill_chunk_tokens: int | None = None
    preemption: bool = False
    request_timeout_s: float | None = None
    shed_queue_depth: int | None = None
    shed_resume_depth: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.decode_token_source not in ("sampled", "greedy"):
            raise ConfigError(
                f"decode_token_source must be 'sampled' or 'greedy', got "
                f"{self.decode_token_source!r}"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ConfigError(
                f"prefill_chunk_tokens must be >= 1 (or None), got "
                f"{self.prefill_chunk_tokens}"
            )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ConfigError(
                f"request_timeout_s must be positive (or None), got "
                f"{self.request_timeout_s}"
            )
        if self.shed_queue_depth is not None and self.shed_queue_depth < 1:
            raise ConfigError(
                f"shed_queue_depth must be >= 1 (or None), got "
                f"{self.shed_queue_depth}"
            )
        if self.shed_resume_depth is not None:
            if self.shed_queue_depth is None:
                raise ConfigError(
                    "shed_resume_depth requires shed_queue_depth"
                )
            if not 0 <= self.shed_resume_depth < self.shed_queue_depth:
                raise ConfigError(
                    f"shed_resume_depth must be in [0, shed_queue_depth), got "
                    f"{self.shed_resume_depth} with high watermark "
                    f"{self.shed_queue_depth}"
                )


@dataclass(frozen=True)
class Action:
    """One scheduling decision for the next engine iteration.

    ``kind`` is one of:

    - ``"admit"`` — start ``request``'s prefill (first chunk when
      chunking is on and others are decoding), no earlier than
      ``not_before``;
    - ``"prefill"`` — finish the in-progress chunked prefill (only
      issued when nothing decodes, so the remainder runs as one step);
    - ``"decode"`` — advance every running request one token in a
      fused step, carrying the next slice of an in-progress chunked
      prefill when there is one (a hybrid step);
    - ``"preempt"`` — pause ``request`` (the chosen victim), freeing a
      batch slot for a higher-priority arrival;
    - ``"resume"`` — return the paused ``request`` to the decode batch.
    """

    kind: str
    request: "Request | None" = None
    not_before: float = 0.0


def _admission_key(request: "Request") -> tuple:
    """Sort key for admission candidates: priority, then FCFS.

    Arrival is compared trace-relative (``relative_arrival``): preempted
    requests had their ``arrival_time`` shifted onto the warm clock at
    admission, while queued ones have not, and FCFS-within-class must
    not depend on that bookkeeping difference.
    """
    return (-request.priority_rank, request.relative_arrival, request.request_id)


class ContinuousBatchingScheduler:
    """Priority-then-FCFS admission + iteration-level batching policy."""

    def __init__(self, config: ServingConfig | None = None) -> None:
        self.config = config or ServingConfig()

    def next_action(
        self,
        now: float,
        queued: "Sequence[Request]",
        running: "Sequence[Request]",
        prefilling: "Request | None" = None,
        preempted: "Sequence[Request]" = (),
    ) -> Action | None:
        """Decide the next iteration given queue/batch occupancy.

        Parameters
        ----------
        now:
            Current simulated time (the clock's compute frontier).
        queued:
            Pending requests in arrival order (head first).
        running:
            Requests currently decoding in the fused batch.
        prefilling:
            The request mid-chunked-prefill, if any (at most one).
        preempted:
            Paused requests awaiting resumption, in preemption order.

        Returns
        -------
        Action or None
            ``None`` when there is nothing left to do (loop ends).
        """
        config = self.config
        occupancy = len(running) + (1 if prefilling is not None else 0)

        # 1. An in-progress chunked prefill rides the decode steps: the
        #    next slice fuses into the running batch's hybrid step. With
        #    the decoders drained there is no stall left to bound, so
        #    the remainder runs as one dedicated prefill step.
        if prefilling is not None:
            if running:
                return Action(kind="decode")
            return Action(kind="prefill", request=prefilling)

        arrived = [r for r in queued if r.arrival_time <= now]

        # 2. Cooperative preemption: a full batch yields its lowest-
        #    priority member to an arrived strictly-higher-priority
        #    arrival. The victim is the newest request of the lowest
        #    class, so older work keeps finishing.
        if (
            config.preemption
            and running
            and occupancy >= config.max_batch_size
            and arrived
        ):
            best = min(arrived, key=_admission_key)
            victim = min(
                running,
                key=lambda r: (
                    r.priority_rank,
                    -r.relative_arrival,
                    -r.request_id,
                ),
            )
            if best.priority_rank > victim.priority_rank:
                return Action(kind="preempt", request=victim)

        # 3. Admission / resumption: arrived queued requests and paused
        #    requests compete for free slots by (priority, arrival, id).
        if occupancy < config.max_batch_size:
            candidates = list(arrived) + list(preempted)
            if candidates:
                best = min(candidates, key=_admission_key)
                if best.is_preempted:
                    return Action(kind="resume", request=best)
                return Action(
                    kind="admit",
                    request=best,
                    not_before=max(now, best.arrival_time),
                )
            if not running and not preempted and queued:
                # Idle jump: nothing has arrived and the platform is
                # drained — admit the earliest future arrival and let
                # the clock idle up to it.
                head = min(
                    queued,
                    key=lambda r: (
                        r.arrival_time,
                        -r.priority_rank,
                        r.request_id,
                    ),
                )
                return Action(
                    kind="admit",
                    request=head,
                    not_before=max(now, head.arrival_time),
                )

        if running:
            return Action(kind="decode")
        if preempted:
            # Batch drained with paused work left (only reachable when
            # the ceiling is consumed by queued arrivals in the same
            # iteration — defensively resume the best candidate).
            best = min(preempted, key=_admission_key)  # pragma: no cover
            return Action(kind="resume", request=best)  # pragma: no cover
        return None
