"""The multi-request serving loop: continuous batching over one engine.

:class:`ServingEngine` drives an :class:`~repro.engine.engine.InferenceEngine`'s
batch-capable :class:`~repro.engine.pipeline.StepPipeline` for many
concurrent requests against **one** shared expert cache, hybrid
scheduler and CPU/GPU/PCIe clock. Each iteration either admits the
head-of-line request (running its prefill as a dedicated step) or
advances every running request one token in a single fused decode step,
so per-layer routing is the union of the batch's activated experts —
the realistic multi-request contention the cache and prefetcher face in
production serving.

Numerical contract: serving a single request reproduces
``InferenceEngine.generate`` **bit-identically** — same hidden states,
same sampled tokens, same step metrics — because the fused pipeline
degenerates to the historical single-sequence step and the decode
sampler derives from the same stream. The serving equivalence tests
enforce this.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.engine.engine import InferenceEngine
from repro.engine.metrics import GenerationResult, ServingReport
from repro.engine.pipeline import SequenceStep
from repro.errors import ConfigError
from repro.rng import derive_rng
from repro.serving.request import Request, RequestStatus
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingConfig
from repro.workloads.generator import ArrivedWorkload

__all__ = ["ServingEngine", "requests_from_trace"]


def requests_from_trace(entries: Iterable[ArrivedWorkload]) -> list[Request]:
    """Materialise serving-trace entries as requests (ids = trace order)."""
    return [
        Request.from_workload(index, entry) for index, entry in enumerate(entries)
    ]


class ServingEngine:
    """Continuous-batching serving loop over one inference engine.

    Parameters
    ----------
    engine:
        The engine whose pipeline, cache and clock are shared by all
        requests. A fresh engine gives cold-start reports; serving on a
        warm engine (a prior serve or generate) is supported — arrival
        times shift onto the warm clock and cache stats are reported as
        deltas — but residency carries over, by design.
    config:
        Serving knobs (batch ceiling, decode token source).
    """

    def __init__(
        self, engine: InferenceEngine, config: ServingConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.scheduler = ContinuousBatchingScheduler(self.config)
        #: Cache counters at the current serve()'s start; report and
        #: per-request totals are deltas against it, so a warm engine
        #: (prior serve/generate) does not pollute a later report.
        self._stats_baseline: tuple[int, int] = (0, 0)

    # ------------------------------------------------------------------
    def serve(self, requests: Iterable[Request]) -> ServingReport:
        """Serve all requests to completion; returns the serving report.

        Requests are admitted FCFS by ``(arrival_time, request_id)``.
        The loop is fully deterministic under fixed seeds: identical
        request sets produce identical reports.

        Requests are single-use and owned by the loop once submitted:
        on a warm engine each admitted request's ``arrival_time`` is
        shifted in place onto the clock frontier at serve start, so
        records report effective arrivals on the shared clock, not the
        original trace offsets.
        """
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if not pending:
            raise ConfigError("serve() needs at least one request")
        ids = [r.request_id for r in pending]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate request ids in batch: {sorted(ids)}")
        for request in pending:
            if request.status is not RequestStatus.QUEUED:
                raise ConfigError(
                    f"request {request.request_id} was already served "
                    f"(status {request.status.value})"
                )

        engine = self.engine
        # Arrival times are trace-relative; on a warm engine (a second
        # serve, or a prior generate) they are shifted onto the clock's
        # frontier at serve start, so queueing delays stay meaningful.
        # The shift is applied to each request once, at admission —
        # still-queued requests are never mutated, so a serve retried
        # after a mid-run failure cannot double-shift them. A fresh
        # engine has origin 0 (the bit-equivalence path).
        origin = engine.runtime.clock.compute_frontier
        cache = engine.runtime.cache
        assert cache is not None  # always bound by InferenceEngine.__init__
        stats_start = cache.stats  # one snapshot: aggregated on sharded caches
        hits_before, misses_before = stats_start.hits, stats_start.misses
        self._stats_baseline = (hits_before, misses_before)
        queue: deque[Request] = deque(pending)
        running: list[Request] = []
        finished: list[Request] = []
        samplers: dict[int, np.random.Generator] = {}
        solo = len(pending) == 1

        try:
            while queue or running:
                # The policy reasons in trace-relative time; admission
                # floors are translated back to absolute clock time.
                now = engine.runtime.clock.compute_frontier - origin
                action = self.scheduler.next_action(now, queue, len(running))
                if action is None:  # pragma: no cover - defensive
                    break
                if action.kind == "admit":
                    # FCFS invariant: the policy only admits the head.
                    request = queue.popleft()
                    assert request is action.request
                    request.arrival_time += origin
                    self._prefill(
                        request, action.not_before + origin, samplers, solo
                    )
                    if request.decode_steps == 0:
                        self._finish(request, request.first_token_time)
                        finished.append(request)
                    else:
                        request.status = RequestStatus.DECODING
                        running.append(request)
                else:
                    for request in self._decode_step(running, samplers):
                        running.remove(request)
                        finished.append(request)
        finally:
            # A mid-run failure (strategy bug, interrupt) must not leave
            # orphaned decode states behind: the engine stays usable.
            for request in pending:
                if not request.is_finished and request.request_id in engine.states:
                    engine.states.pop(request.request_id)

        final_stats = cache.stats
        return ServingReport(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            max_batch_size=self.config.max_batch_size,
            requests=sorted(
                (r.to_record() for r in finished), key=lambda r: r.request_id
            ),
            total_hits=final_stats.hits - hits_before,
            total_misses=final_stats.misses - misses_before,
        )

    def serve_trace(self, entries: Iterable[ArrivedWorkload]) -> ServingReport:
        """Convenience: build requests from a serving trace and serve."""
        return self.serve(requests_from_trace(entries))

    # ------------------------------------------------------------------
    def _sampler(self, request: Request, solo: bool) -> np.random.Generator:
        """Per-request decode-sampling stream.

        A solo request with ``sample_seed=None`` gets byte-for-byte the
        stream ``InferenceEngine.generate`` derives, preserving
        single-request bit-equivalence. In a multi-request run an unset
        seed falls back to the request id — otherwise every default
        request would share one stream and identical prompts would
        decode identical token trajectories, faking cache affinity.
        """
        seed = self.engine.config.seed
        if request.sample_seed is None:
            if solo:
                return derive_rng(seed, "engine", "decode-sampling")
            # Distinct namespace from explicit seeds, so an explicit
            # sample_seed equal to another request's id cannot collide
            # with that request's auto-derived stream.
            return derive_rng(
                seed, "engine", "decode-sampling", "auto", request.request_id
            )
        return derive_rng(seed, "engine", "decode-sampling", request.sample_seed)

    def _prefill(
        self,
        request: Request,
        not_before: float,
        samplers: dict[int, np.random.Generator],
        solo: bool,
    ) -> None:
        """Admit one request: create its state and run its prefill step."""
        engine = self.engine
        # Leave QUEUED before any fallible work: a failed admission must
        # not leave the request replayable (its arrival was shifted).
        request.status = RequestStatus.PREFILL
        state = engine.states.create(request.request_id)
        result = engine.pipeline.run_batch(
            [SequenceStep(request.prompt_tokens, state)],
            "prefill",
            not_before=max(not_before, request.arrival_time),
        )
        metrics = result.metrics
        request.prefill_start = metrics.start
        request.first_token_time = metrics.end
        request.last_token_time = metrics.end
        request.last_hidden = result.hidden[0][-1]
        request.result = GenerationResult(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            prefill=metrics,
        )
        samplers[request.request_id] = self._sampler(request, solo)

    def _decode_step(
        self,
        running: list[Request],
        samplers: dict[int, np.random.Generator],
    ) -> list[Request]:
        """Advance every running request one token in one fused step."""
        engine = self.engine
        model = engine.model
        batch: list[SequenceStep] = []
        for request in running:
            assert request.last_hidden is not None
            if self.config.decode_token_source == "greedy":
                token = model.greedy_next_token(request.last_hidden)
            else:
                token = model.sample_next_token(
                    request.last_hidden, samplers[request.request_id]
                )
            request.output_tokens.append(token)
            batch.append(
                SequenceStep(
                    np.array([token]), engine.states.get(request.request_id)
                )
            )
        result = engine.pipeline.run_batch(batch, "decode")
        metrics = result.metrics
        done: list[Request] = []
        for index, request in enumerate(running):
            request.last_hidden = result.hidden[index][-1]
            assert request.result is not None
            request.result.decode_steps.append(metrics)
            # TBT is the gap between consecutive token *emissions*, so
            # stalls from interleaved prefills of other requests count
            # against the waiting request's tokens. With contiguous
            # decode steps (any single-request run) the gap equals the
            # step duration exactly, preserving generate-equivalence.
            assert request.last_token_time is not None
            request.tbt_values.append(metrics.end - request.last_token_time)
            request.last_token_time = metrics.end
            if request.tokens_remaining == 0:
                self._finish(request, metrics.end)
                done.append(request)
        return done

    def _finish(self, request: Request, finish_time: float | None) -> None:
        """Seal a completed request and release its decode state.

        ``request.result`` mirrors what ``generate`` would report on
        the engine, which in a multi-request run means *fleet-level*
        numbers: ``total_hits/total_misses`` snapshot the shared cache
        counters at finish time, and ``decode_steps`` hold the fused
        batch steps (so ``result.tbt_values`` are step durations, not
        this request's emission gaps). Per-request truth lives on the
        :class:`~repro.engine.metrics.RequestRecord` (``tbt_values``,
        percentiles) and fleet comparisons in the
        :class:`~repro.engine.metrics.ServingReport`.
        """
        assert finish_time is not None
        request.status = RequestStatus.FINISHED
        request.finish_time = finish_time
        cache = self.engine.runtime.cache
        if request.result is not None and cache is not None:
            hits_before, misses_before = self._stats_baseline
            stats_now = cache.stats
            request.result.total_hits = stats_now.hits - hits_before
            request.result.total_misses = stats_now.misses - misses_before
        self.engine.states.pop(request.request_id)
