"""The multi-request serving loop: continuous batching over one engine.

:class:`ServingEngine` drives an :class:`~repro.engine.engine.InferenceEngine`'s
batch-capable :class:`~repro.engine.pipeline.StepPipeline` for many
concurrent requests against **one** shared expert cache, hybrid
scheduler and CPU/GPU/PCIe clock. Each iteration runs one of the
actions decided by the
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`:

- **admit** the best queued request (priority class first, FCFS within
  a class), running its prefill as a dedicated step — or, with chunked
  prefill on and an SLO-class request decoding, its first bounded
  slice;
- **prefill** the remainder of an in-progress chunked prefill once the
  decode batch has drained (no stall left to bound — one step);
- **decode** every running request one token in a single fused step —
  carrying the next bounded slice of an in-progress chunked prefill as
  one extra sequence (a *hybrid* step) — so per-layer routing is the
  union of the batch's activated experts: the realistic multi-request
  contention the cache and prefetcher face in production serving;
- **preempt** / **resume** the lowest-priority decoder under overload
  (its :class:`~repro.models.model.DecodeState` stays registered and
  expert-cache contents untouched, so resumption needs no recompute).

The loop body itself lives in
:class:`~repro.serving.session.ServingSession`, a stepwise object the
fleet layer (:mod:`repro.fleet`) also drives — interleaving many
replica sessions, submitting requests mid-run, and aborting crashed
replicas. ``serve()`` is the batch driver: one session, stepped to
completion.

Numerical contract: with the default configuration (single priority
class, chunking off, preemption off) serving reproduces the historical
FCFS loop **bit-identically** — and a single request reproduces
``InferenceEngine.generate`` — because the fused pipeline degenerates
to the historical step sequence and the decode sampler derives from
the same stream. The serving equivalence tests enforce both.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.engine.engine import InferenceEngine
from repro.engine.metrics import ServingReport
from repro.errors import ConfigError
from repro.hardware.faults import HardwareFaultSchedule
from repro.serving.request import Request
from repro.serving.scheduler import ServingConfig
from repro.serving.session import ServingSession
from repro.workloads.generator import ArrivedWorkload

__all__ = ["ServingEngine", "requests_from_trace"]


def requests_from_trace(entries: Iterable[ArrivedWorkload]) -> list[Request]:
    """Materialise serving-trace entries as requests (ids = trace order).

    Arrival instants are validated: a negative arrival raises
    :class:`~repro.errors.ConfigError`, and a non-monotone trace (an
    entry arriving before its predecessor) is accepted with a
    ``UserWarning`` — the serving loop orders admission by arrival
    time, so the trace is effectively sorted, but out-of-order traces
    usually signal a bug in trace construction.
    """
    entries = list(entries)
    arrivals = [float(e.arrival_time) for e in entries]
    if any(a < 0 for a in arrivals):
        bad = min(arrivals)
        raise ConfigError(f"arrival times must be non-negative, got {bad}")
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        warnings.warn(
            "serving trace arrival times are not non-decreasing; the serving "
            "loop admits by arrival time, so entries will be reordered",
            stacklevel=2,
        )
    return [
        Request.from_workload(index, entry) for index, entry in enumerate(entries)
    ]


class ServingEngine:
    """Continuous-batching serving loop over one inference engine.

    Parameters
    ----------
    engine:
        The engine whose pipeline, cache and clock are shared by all
        requests. A fresh engine gives cold-start reports; serving on a
        warm engine (a prior serve or generate) is supported — arrival
        times shift onto the warm clock and cache stats are reported as
        deltas — but residency carries over, by design.
    config:
        Serving knobs (batch ceiling, decode token source, chunked
        prefill, preemption, timeouts, overload shedding).
    hardware_faults:
        Optional sub-replica hardware fault schedule (replica-0 faults
        apply — a bare engine is its own replica 0). ``None`` (default)
        injects nothing and is bit-identical to an unfired schedule.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: ServingConfig | None = None,
        hardware_faults: HardwareFaultSchedule | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.hardware_faults = hardware_faults

    # ------------------------------------------------------------------
    def serve(self, requests: Iterable[Request]) -> ServingReport:
        """Serve all requests to completion; returns the serving report.

        Requests are admitted by ``(priority class, arrival_time,
        request_id)`` — with a single class, plain FCFS. The loop is
        fully deterministic under fixed seeds: identical request sets
        produce identical reports.

        Requests are single-use and owned by the loop once submitted:
        on a warm engine each admitted request's ``arrival_time`` is
        shifted in place onto the clock frontier at serve start, so
        records report effective arrivals on the shared clock, not the
        original trace offsets.
        """
        pending = list(requests)
        if not pending:
            raise ConfigError("serve() needs at least one request")
        session = ServingSession(
            self.engine,
            self.config,
            pending,
            hardware_faults=self.hardware_faults,
        )
        try:
            while session.step():
                pass
        finally:
            # A mid-run failure (strategy bug, interrupt) must not leave
            # orphaned decode states behind: the engine stays usable.
            session.release_states()
        return session.report()

    def serve_trace(self, entries: Iterable[ArrivedWorkload]) -> ServingReport:
        """Convenience: build requests from a serving trace and serve.

        Trace arrivals are validated by :func:`requests_from_trace`
        (negative arrivals raise, non-monotone traces warn).
        """
        return self.serve(requests_from_trace(entries))
