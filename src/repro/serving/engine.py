"""The multi-request serving loop: continuous batching over one engine.

:class:`ServingEngine` drives an :class:`~repro.engine.engine.InferenceEngine`'s
batch-capable :class:`~repro.engine.pipeline.StepPipeline` for many
concurrent requests against **one** shared expert cache, hybrid
scheduler and CPU/GPU/PCIe clock. Each iteration runs one of the
actions decided by the
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`:

- **admit** the best queued request (priority class first, FCFS within
  a class), running its prefill as a dedicated step — or, with chunked
  prefill on and an SLO-class request decoding, its first bounded
  slice;
- **prefill** the remainder of an in-progress chunked prefill once the
  decode batch has drained (no stall left to bound — one step);
- **decode** every running request one token in a single fused step —
  carrying the next bounded slice of an in-progress chunked prefill as
  one extra sequence (a *hybrid* step) — so per-layer routing is the
  union of the batch's activated experts: the realistic multi-request
  contention the cache and prefetcher face in production serving;
- **preempt** / **resume** the lowest-priority decoder under overload
  (its :class:`~repro.models.model.DecodeState` stays registered and
  expert-cache contents untouched, so resumption needs no recompute).

Numerical contract: with the default configuration (single priority
class, chunking off, preemption off) serving reproduces the historical
FCFS loop **bit-identically** — and a single request reproduces
``InferenceEngine.generate`` — because the fused pipeline degenerates
to the historical step sequence and the decode sampler derives from
the same stream. The serving equivalence tests enforce both.
"""

from __future__ import annotations

import warnings
from typing import Iterable

import numpy as np

from repro.engine.engine import InferenceEngine
from repro.engine.metrics import GenerationResult, ServingReport, StepMetrics
from repro.engine.pipeline import SequenceStep
from repro.errors import ConfigError
from repro.rng import derive_rng
from repro.serving.request import Request, RequestStatus
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingConfig
from repro.workloads.generator import ArrivedWorkload

__all__ = ["ServingEngine", "requests_from_trace"]


def _remove_by_identity(items: list[Request], target: Request) -> None:
    """Drop ``target`` from ``items`` by object identity.

    ``list.remove`` falls back to ``__eq__`` (field-wise on the
    dataclass, touching numpy arrays) for non-matching entries; the
    loop always holds the exact object, so identity is both safer and
    cheaper.
    """
    for index, item in enumerate(items):
        if item is target:
            del items[index]
            return
    raise ValueError(f"request {target.request_id} not in list")  # pragma: no cover


def requests_from_trace(entries: Iterable[ArrivedWorkload]) -> list[Request]:
    """Materialise serving-trace entries as requests (ids = trace order).

    Arrival instants are validated: a negative arrival raises
    :class:`~repro.errors.ConfigError`, and a non-monotone trace (an
    entry arriving before its predecessor) is accepted with a
    ``UserWarning`` — the serving loop orders admission by arrival
    time, so the trace is effectively sorted, but out-of-order traces
    usually signal a bug in trace construction.
    """
    entries = list(entries)
    arrivals = [float(e.arrival_time) for e in entries]
    if any(a < 0 for a in arrivals):
        bad = min(arrivals)
        raise ConfigError(f"arrival times must be non-negative, got {bad}")
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        warnings.warn(
            "serving trace arrival times are not non-decreasing; the serving "
            "loop admits by arrival time, so entries will be reordered",
            stacklevel=2,
        )
    return [
        Request.from_workload(index, entry) for index, entry in enumerate(entries)
    ]


class ServingEngine:
    """Continuous-batching serving loop over one inference engine.

    Parameters
    ----------
    engine:
        The engine whose pipeline, cache and clock are shared by all
        requests. A fresh engine gives cold-start reports; serving on a
        warm engine (a prior serve or generate) is supported — arrival
        times shift onto the warm clock and cache stats are reported as
        deltas — but residency carries over, by design.
    config:
        Serving knobs (batch ceiling, decode token source, chunked
        prefill, preemption).
    """

    def __init__(
        self, engine: InferenceEngine, config: ServingConfig | None = None
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.scheduler = ContinuousBatchingScheduler(self.config)
        #: Cache counters at the current serve()'s start; report and
        #: per-request totals are deltas against it, so a warm engine
        #: (prior serve/generate) does not pollute a later report.
        self._stats_baseline: tuple[int, int] = (0, 0)

    # ------------------------------------------------------------------
    def serve(self, requests: Iterable[Request]) -> ServingReport:
        """Serve all requests to completion; returns the serving report.

        Requests are admitted by ``(priority class, arrival_time,
        request_id)`` — with a single class, plain FCFS. The loop is
        fully deterministic under fixed seeds: identical request sets
        produce identical reports.

        Requests are single-use and owned by the loop once submitted:
        on a warm engine each admitted request's ``arrival_time`` is
        shifted in place onto the clock frontier at serve start, so
        records report effective arrivals on the shared clock, not the
        original trace offsets.
        """
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if not pending:
            raise ConfigError("serve() needs at least one request")
        ids = [r.request_id for r in pending]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate request ids in batch: {sorted(ids)}")
        for request in pending:
            if request.status is not RequestStatus.QUEUED:
                raise ConfigError(
                    f"request {request.request_id} was already served "
                    f"(status {request.status.value})"
                )

        engine = self.engine
        # Arrival times are trace-relative; on a warm engine (a second
        # serve, or a prior generate) they are shifted onto the clock's
        # frontier at serve start, so queueing delays stay meaningful.
        # The shift is applied to each request once, at admission —
        # still-queued requests are never mutated, so a serve retried
        # after a mid-run failure cannot double-shift them. A fresh
        # engine has origin 0 (the bit-equivalence path).
        origin = engine.runtime.clock.compute_frontier
        cache = engine.runtime.cache
        assert cache is not None  # always bound by InferenceEngine.__init__
        stats_start = cache.stats  # one snapshot: aggregated on sharded caches
        hits_before, misses_before = stats_start.hits, stats_start.misses
        self._stats_baseline = (hits_before, misses_before)
        queue: list[Request] = list(pending)
        running: list[Request] = []
        preempted: list[Request] = []
        prefilling: Request | None = None
        finished: list[Request] = []
        samplers: dict[int, np.random.Generator] = {}
        solo = len(pending) == 1
        preemptions = 0

        try:
            while queue or running or preempted or prefilling is not None:
                # The policy reasons in trace-relative time; admission
                # floors are translated back to absolute clock time.
                now = engine.runtime.clock.compute_frontier - origin
                action = self.scheduler.next_action(
                    now,
                    queue,
                    running,
                    prefilling=prefilling,
                    preempted=preempted,
                )
                if action is None:  # pragma: no cover - defensive
                    break
                if action.kind == "admit":
                    request = action.request
                    assert request is not None
                    _remove_by_identity(queue, request)
                    request.arrival_shift = origin
                    request.arrival_time += origin
                    # Chunk boundaries exist to bound the decode stalls
                    # of *SLO-class* decoders (any class above the
                    # default): while one is decoding, every admitted
                    # prompt — whatever its own class — prefills in
                    # slices. Default-class decoders eat whole-prompt
                    # stalls, so a default-only run never pays slice
                    # overhead.
                    protect = any(r.priority_rank > 0 for r in running)
                    complete = self._prefill(
                        request,
                        action.not_before + origin,
                        samplers,
                        solo,
                        chunked=protect,
                    )
                    if not complete:
                        prefilling = request
                    elif request.decode_steps == 0:
                        self._finish(request, request.first_token_time)
                        finished.append(request)
                    else:
                        request.status = RequestStatus.DECODING
                        running.append(request)
                elif action.kind == "prefill":
                    request = action.request
                    assert request is prefilling and not running
                    # No decoders left to protect: the remaining prompt
                    # runs as one dedicated step.
                    self._prefill_remainder(request, samplers, solo)
                    prefilling = None
                    if request.decode_steps == 0:
                        self._finish(request, request.first_token_time)
                        finished.append(request)
                    else:
                        request.status = RequestStatus.DECODING
                        running.append(request)
                elif action.kind == "preempt":
                    victim = action.request
                    assert victim is not None
                    _remove_by_identity(running, victim)
                    victim.status = RequestStatus.PREEMPTED
                    victim.num_preemptions += 1
                    preempted.append(victim)
                    preemptions += 1
                elif action.kind == "resume":
                    request = action.request
                    assert request is not None
                    _remove_by_identity(preempted, request)
                    request.status = RequestStatus.DECODING
                    running.append(request)
                else:
                    done, chunk_complete = self._decode_step(
                        running, samplers, prefilling, solo
                    )
                    for request in done:
                        _remove_by_identity(running, request)
                        finished.append(request)
                    if chunk_complete:
                        request = prefilling
                        prefilling = None
                        if request.decode_steps == 0:
                            self._finish(request, request.first_token_time)
                            finished.append(request)
                        else:
                            request.status = RequestStatus.DECODING
                            running.append(request)
        finally:
            # A mid-run failure (strategy bug, interrupt) must not leave
            # orphaned decode states behind: the engine stays usable.
            for request in pending:
                if not request.is_finished and request.request_id in engine.states:
                    engine.states.pop(request.request_id)

        final_stats = cache.stats
        return ServingReport(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            max_batch_size=self.config.max_batch_size,
            requests=sorted(
                (r.to_record() for r in finished), key=lambda r: r.request_id
            ),
            total_hits=final_stats.hits - hits_before,
            total_misses=final_stats.misses - misses_before,
            preemptions=preemptions,
        )

    def serve_trace(self, entries: Iterable[ArrivedWorkload]) -> ServingReport:
        """Convenience: build requests from a serving trace and serve.

        Trace arrivals are validated by :func:`requests_from_trace`
        (negative arrivals raise, non-monotone traces warn).
        """
        return self.serve(requests_from_trace(entries))

    # ------------------------------------------------------------------
    def _sampler(self, request: Request, solo: bool) -> np.random.Generator:
        """Per-request decode-sampling stream.

        A solo request with ``sample_seed=None`` gets byte-for-byte the
        stream ``InferenceEngine.generate`` derives, preserving
        single-request bit-equivalence. In a multi-request run an unset
        seed falls back to the request id — otherwise every default
        request would share one stream and identical prompts would
        decode identical token trajectories, faking cache affinity.
        """
        seed = self.engine.config.seed
        if request.sample_seed is None:
            if solo:
                return derive_rng(seed, "engine", "decode-sampling")
            # Distinct namespace from explicit seeds, so an explicit
            # sample_seed equal to another request's id cannot collide
            # with that request's auto-derived stream.
            return derive_rng(
                seed, "engine", "decode-sampling", "auto", request.request_id
            )
        return derive_rng(seed, "engine", "decode-sampling", request.sample_seed)

    def _prefill(
        self,
        request: Request,
        not_before: float,
        samplers: dict[int, np.random.Generator],
        solo: bool,
        chunked: bool = False,
    ) -> bool:
        """Admit one request: create its state and start its prefill.

        Returns True when the prefill completed; False when the request
        entered a chunked prefill and owes more chunks. ``chunked`` is
        whether a strictly-higher-priority request is currently
        decoding: chunk boundaries exist to bound *its* stalls, so with
        nothing to protect (idle platform, or only peers/lower classes
        decoding) the whole prompt runs in one step instead of paying
        per-slice step overhead for nobody's benefit.
        """
        engine = self.engine
        chunk = self.config.prefill_chunk_tokens
        # Leave QUEUED before any fallible work: a failed admission must
        # not leave the request replayable (its arrival was shifted).
        request.status = RequestStatus.PREFILL
        state = engine.states.create(request.request_id)
        if chunked and chunk is not None and request.prompt_len > chunk:
            # First slice of a chunked prefill; the remaining slices
            # ride the fused decode steps (one hybrid step per slice).
            result = engine.pipeline.run_batch(
                [SequenceStep(request.prompt_tokens[:chunk], state)],
                "prefill",
                not_before=max(not_before, request.arrival_time),
            )
            request.prefill_pos = chunk
            request.prefill_chunks.append(result.metrics)
            request.prefill_start = result.metrics.start
            return False
        result = engine.pipeline.run_batch(
            [SequenceStep(request.prompt_tokens, state)],
            "prefill",
            not_before=max(not_before, request.arrival_time),
        )
        metrics = result.metrics
        request.prefill_start = metrics.start
        self._seal_prefill(request, metrics, result.hidden[0][-1], samplers, solo)
        return True

    def _prefill_remainder(
        self,
        request: Request,
        samplers: dict[int, np.random.Generator],
        solo: bool,
    ) -> None:
        """Finish a chunked prefill with the batch drained.

        With no request left decoding there is no stall to bound, so
        the whole remaining prompt runs as one final slice instead of
        paying per-chunk step overhead for nobody's benefit.
        """
        engine = self.engine
        assert request.prefill_pos > 0
        tokens = request.prompt_tokens[request.prefill_pos :]
        result = engine.pipeline.run_batch(
            [SequenceStep(tokens, engine.states.get(request.request_id))],
            "prefill",
        )
        request.prefill_pos = request.prompt_len
        request.prefill_chunks.append(result.metrics)
        merged = self._merged_prefill_metrics(request)
        self._seal_prefill(request, merged, result.hidden[0][-1], samplers, solo)

    def _merged_prefill_metrics(self, request: Request) -> StepMetrics:
        """Collapse a chunked prefill into one logical prefill metric.

        The span runs from the first chunk's start to the last chunk's
        end — the price the request actually paid. Hits/misses are
        summed (hybrid slices share their fused step's counters with
        the decode batch, the same fleet-level convention as fused
        decode metrics) and utilisation is the duration-weighted mean
        of the chunks' own windows.
        """
        chunks = request.prefill_chunks
        durations = [c.duration for c in chunks]
        total = sum(durations)
        keys = chunks[0].utilization.keys()
        if total > 0:
            utilization = {
                k: sum(c.utilization.get(k, 0.0) * d for c, d in zip(chunks, durations))
                / total
                for k in keys
            }
        else:  # pragma: no cover - zero-duration steps do not occur
            utilization = dict(chunks[0].utilization)
        return StepMetrics(
            stage="prefill",
            n_tokens=request.prompt_len,
            start=chunks[0].start,
            end=chunks[-1].end,
            hits=sum(c.hits for c in chunks),
            misses=sum(c.misses for c in chunks),
            utilization=utilization,
            batch_size=1,
        )

    def _seal_prefill(
        self,
        request: Request,
        metrics: StepMetrics,
        last_hidden: np.ndarray,
        samplers: dict[int, np.random.Generator],
        solo: bool,
    ) -> None:
        """Record prefill completion: first token, result, sampler."""
        engine = self.engine
        request.first_token_time = metrics.end
        request.last_token_time = metrics.end
        request.last_hidden = last_hidden
        request.result = GenerationResult(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            prefill=metrics,
        )
        samplers[request.request_id] = self._sampler(request, solo)

    def _decode_step(
        self,
        running: list[Request],
        samplers: dict[int, np.random.Generator],
        prefilling: Request | None = None,
        solo: bool = False,
    ) -> tuple[list[Request], bool]:
        """Advance every running request one token in one fused step.

        With a chunked prefill in progress, its next slice rides the
        same step as one extra sequence (a *hybrid* step): attention is
        charged once for the combined token count and the slice's
        experts are planned together with the decode batch's union, so
        chunking adds no dedicated steps while anyone is decoding.

        Returns the requests that finished and whether the hybrid
        slice completed the prefill.
        """
        engine = self.engine
        model = engine.model
        batch: list[SequenceStep] = []
        for request in running:
            assert request.last_hidden is not None
            if self.config.decode_token_source == "greedy":
                token = model.greedy_next_token(request.last_hidden)
            else:
                token = model.sample_next_token(
                    request.last_hidden, samplers[request.request_id]
                )
            request.output_tokens.append(token)
            batch.append(
                SequenceStep(
                    np.array([token]), engine.states.get(request.request_id)
                )
            )
        chunk_end = 0
        if prefilling is not None:
            chunk = self.config.prefill_chunk_tokens
            assert chunk is not None and prefilling.prefill_pos > 0
            chunk_end = min(prefilling.prefill_pos + chunk, prefilling.prompt_len)
            batch.append(
                SequenceStep(
                    prefilling.prompt_tokens[prefilling.prefill_pos : chunk_end],
                    engine.states.get(prefilling.request_id),
                )
            )
        result = engine.pipeline.run_batch(batch, "decode")
        metrics = result.metrics
        chunk_complete = False
        if prefilling is not None:
            prefilling.prefill_pos = chunk_end
            prefilling.prefill_chunks.append(metrics)
            if chunk_end == prefilling.prompt_len:
                self._seal_prefill(
                    prefilling,
                    self._merged_prefill_metrics(prefilling),
                    result.hidden[-1][-1],
                    samplers,
                    solo,
                )
                chunk_complete = True
        done: list[Request] = []
        for index, request in enumerate(running):
            request.last_hidden = result.hidden[index][-1]
            assert request.result is not None
            request.result.decode_steps.append(metrics)
            # TBT is the gap between consecutive token *emissions*, so
            # stalls from interleaved prefills of other requests (and
            # time spent preempted) count against the waiting
            # request's tokens. With contiguous decode steps (any
            # single-request run) the gap equals the step duration
            # exactly, preserving generate-equivalence.
            assert request.last_token_time is not None
            request.tbt_values.append(metrics.end - request.last_token_time)
            request.last_token_time = metrics.end
            if request.tokens_remaining == 0:
                self._finish(request, metrics.end)
                done.append(request)
        return done, chunk_complete

    def _finish(self, request: Request, finish_time: float | None) -> None:
        """Seal a completed request and release its decode state.

        ``request.result`` mirrors what ``generate`` would report on
        the engine, which in a multi-request run means *fleet-level*
        numbers: ``total_hits/total_misses`` snapshot the shared cache
        counters at finish time, and ``decode_steps`` hold the fused
        batch steps (so ``result.tbt_values`` are step durations, not
        this request's emission gaps). Per-request truth lives on the
        :class:`~repro.engine.metrics.RequestRecord` (``tbt_values``,
        percentiles) and fleet comparisons in the
        :class:`~repro.engine.metrics.ServingReport`.
        """
        assert finish_time is not None
        request.status = RequestStatus.FINISHED
        request.finish_time = finish_time
        cache = self.engine.runtime.cache
        if request.result is not None and cache is not None:
            hits_before, misses_before = self._stats_baseline
            stats_now = cache.stats
            request.result.total_hits = stats_now.hits - hits_before
            request.result.total_misses = stats_now.misses - misses_before
        self.engine.states.pop(request.request_id)
