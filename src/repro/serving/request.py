"""Request lifecycle for multi-request serving.

A :class:`Request` is the unit of admission: it arrives at a simulated
instant, waits in the FCFS queue, runs one prefill step, then decodes
one token per fused batch step until its budget is exhausted:

    QUEUED → PREFILL → DECODING → FINISHED

The live object is mutated by the serving loop; :meth:`Request.to_record`
freezes the lifecycle into a :class:`~repro.engine.metrics.RequestRecord`
for reporting once the request finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.engine.metrics import GenerationResult, RequestRecord
from repro.errors import ConfigError, SimulationError
from repro.workloads.generator import ArrivedWorkload

__all__ = ["RequestStatus", "Request"]


class RequestStatus(str, Enum):
    """Lifecycle stages of a served request."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass
class Request:
    """One in-flight generation request.

    Parameters
    ----------
    request_id:
        Unique integer id; also keys the per-request decode state.
    prompt_tokens:
        Non-empty 1-D prompt id array.
    decode_steps:
        Decode tokens to generate after prefill (0 = prefill only).
    arrival_time:
        Simulated arrival instant (seconds).
    sample_seed:
        Extra key mixed into the request's decode-sampling stream.
        ``None`` in a *solo* serve uses the engine's default stream —
        the same derivation ``InferenceEngine.generate`` uses, which is
        what makes a single-request serve bit-identical to
        ``generate``. ``None`` in a multi-request serve falls back to
        the request id, so concurrent default requests sample
        independently; :meth:`from_workload` sets the id explicitly.
    """

    request_id: int
    prompt_tokens: np.ndarray
    decode_steps: int
    arrival_time: float = 0.0
    sample_seed: int | None = None

    # lifecycle fields, filled in by the serving loop -------------------
    status: RequestStatus = RequestStatus.QUEUED
    prefill_start: float | None = None
    first_token_time: float | None = None
    #: Emission instant of the most recent token; TBT entries are gaps
    #: between consecutive emissions, so stalls caused by interleaved
    #: prefills of other requests are charged to the waiting tokens.
    last_token_time: float | None = None
    finish_time: float | None = None
    output_tokens: list[int] = field(default_factory=list)
    tbt_values: list[float] = field(default_factory=list)
    last_hidden: np.ndarray | None = None
    result: GenerationResult | None = None

    def __post_init__(self) -> None:
        self.prompt_tokens = np.asarray(self.prompt_tokens, dtype=np.int64)
        if self.prompt_tokens.ndim != 1 or self.prompt_tokens.size == 0:
            raise ConfigError(
                f"request {self.request_id}: prompt_tokens must be a non-empty "
                f"1-D id array"
            )
        if self.decode_steps < 0:
            raise ConfigError(
                f"request {self.request_id}: decode_steps must be non-negative, "
                f"got {self.decode_steps}"
            )
        if self.arrival_time < 0:
            raise ConfigError(
                f"request {self.request_id}: arrival_time must be non-negative, "
                f"got {self.arrival_time}"
            )

    @classmethod
    def from_workload(cls, request_id: int, arrived: ArrivedWorkload) -> "Request":
        """Build a request from one serving-trace entry."""
        return cls(
            request_id=request_id,
            prompt_tokens=np.asarray(arrived.workload.prompt_tokens),
            decode_steps=arrived.workload.decode_steps,
            arrival_time=arrived.arrival_time,
            sample_seed=request_id,
        )

    # ------------------------------------------------------------------
    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens."""
        return int(self.prompt_tokens.size)

    @property
    def tokens_remaining(self) -> int:
        """Decode tokens still owed once the request is decoding."""
        return self.decode_steps - len(self.tbt_values)

    @property
    def is_finished(self) -> bool:
        """Whether the request reached the FINISHED state."""
        return self.status is RequestStatus.FINISHED

    def to_record(self) -> RequestRecord:
        """Freeze the finished lifecycle into a reporting record."""
        if not self.is_finished or self.finish_time is None:
            raise SimulationError(
                f"request {self.request_id} has not finished "
                f"(status {self.status.value})"
            )
        assert self.prefill_start is not None and self.first_token_time is not None
        return RequestRecord(
            request_id=self.request_id,
            prompt_len=self.prompt_len,
            decode_tokens=len(self.tbt_values),
            arrival_time=self.arrival_time,
            prefill_start=self.prefill_start,
            first_token_time=self.first_token_time,
            finish_time=self.finish_time,
            tbt_values=tuple(self.tbt_values),
            result=self.result,
        )
