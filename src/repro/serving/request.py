"""Request lifecycle for multi-request serving.

A :class:`Request` is the unit of admission: it arrives at a simulated
instant, waits in the priority-then-FCFS queue, runs its prefill (one
dedicated step, or several bounded chunks when chunked prefill is on),
then decodes one token per fused batch step until its budget is
exhausted:

    QUEUED → PREFILL → DECODING ⇄ PREEMPTED → FINISHED

``PREEMPTED`` is only reachable with cooperative preemption enabled: a
paused request keeps its decode state and cache residency and resumes
decoding without recompute.

Each request carries a **priority class** (``"batch"`` < ``"interactive"``)
and an optional per-request TBT deadline used for SLO attainment
reporting. The live object is mutated by the serving loop;
:meth:`Request.to_record` freezes the lifecycle into a
:class:`~repro.engine.metrics.RequestRecord` for reporting once the
request finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.engine.metrics import GenerationResult, RequestRecord, StepMetrics
from repro.errors import ConfigError, SimulationError
from repro.workloads.generator import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    ArrivedWorkload,
)

__all__ = [
    "PRIORITY_CLASSES",
    "DEFAULT_PRIORITY",
    "priority_rank",
    "RequestStatus",
    "TERMINAL_STATUSES",
    "Request",
]


def priority_rank(priority: str) -> int:
    """Numeric precedence of a priority class (higher = served first)."""
    try:
        return PRIORITY_CLASSES.index(priority)
    except ValueError:
        known = ", ".join(PRIORITY_CLASSES)
        raise ConfigError(
            f"unknown priority class {priority!r} (known: {known})"
        ) from None


class RequestStatus(str, Enum):
    """Lifecycle stages of a served request.

    ``FINISHED``, ``TIMED_OUT`` and ``SHED`` are **terminal**: every
    submitted request reaches exactly one of them exactly once (the
    chaos-harness invariant). A timed-out request exceeded its
    ``request_timeout_s`` budget and had its partial work released
    (cache residency stays — warmed experts are not un-warmed); a shed
    request was refused admission by overload control and never ran.
    """

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    TIMED_OUT = "timed_out"
    SHED = "shed"


#: Statuses a request can end a serve in (exactly one, exactly once).
TERMINAL_STATUSES = frozenset(
    {RequestStatus.FINISHED, RequestStatus.TIMED_OUT, RequestStatus.SHED}
)


@dataclass
class Request:
    """One in-flight generation request.

    Parameters
    ----------
    request_id:
        Unique integer id; also keys the per-request decode state.
    prompt_tokens:
        Non-empty 1-D prompt id array.
    decode_steps:
        Decode tokens to generate after prefill (0 = prefill only).
    arrival_time:
        Simulated arrival instant (seconds).
    sample_seed:
        Extra key mixed into the request's decode-sampling stream.
        ``None`` in a *solo* serve uses the engine's default stream —
        the same derivation ``InferenceEngine.generate`` uses, which is
        what makes a single-request serve bit-identical to
        ``generate``. ``None`` in a multi-request serve falls back to
        the request id, so concurrent default requests sample
        independently; :meth:`from_workload` sets the id explicitly.
    priority:
        Priority class (one of :data:`PRIORITY_CLASSES`); higher
        classes are admitted first and, with preemption on, may pause
        lower-class decoders under overload.
    tbt_deadline:
        Optional per-request TBT SLO target in seconds; requests whose
        p99 TBT stays within it count as SLO-attained in the serving
        report. Purely observational — it never changes scheduling.
    """

    request_id: int
    prompt_tokens: np.ndarray
    decode_steps: int
    arrival_time: float = 0.0
    sample_seed: int | None = None
    priority: str = DEFAULT_PRIORITY
    tbt_deadline: float | None = None

    # lifecycle fields, filled in by the serving loop -------------------
    status: RequestStatus = RequestStatus.QUEUED
    #: Warm-engine clock offset added to ``arrival_time`` at admission
    #: (0 on a fresh engine). ``relative_arrival`` undoes it so queue
    #: ordering always compares trace-relative instants, even when
    #: admitted-then-preempted requests (shifted) compete with
    #: still-queued ones (unshifted).
    arrival_shift: float = 0.0
    prefill_start: float | None = None
    first_token_time: float | None = None
    #: Emission instant of the most recent token; TBT entries are gaps
    #: between consecutive emissions, so stalls caused by interleaved
    #: prefills of other requests are charged to the waiting tokens.
    last_token_time: float | None = None
    finish_time: float | None = None
    output_tokens: list[int] = field(default_factory=list)
    tbt_values: list[float] = field(default_factory=list)
    last_hidden: np.ndarray | None = None
    result: GenerationResult | None = None
    #: Prompt tokens already prefilled (chunked prefill cursor).
    prefill_pos: int = 0
    #: Per-chunk step metrics of a chunked prefill, merged at completion.
    prefill_chunks: list[StepMetrics] = field(default_factory=list)
    #: Times this request was paused by cooperative preemption.
    num_preemptions: int = 0
    #: Times this request was re-routed to another replica after its
    #: replica crashed (always 0 outside fleet serving).
    num_failovers: int = 0
    #: Times this request was re-submitted after timing out (fleet
    #: retry-with-backoff; always 0 outside fleet serving).
    num_retries: int = 0

    def __post_init__(self) -> None:
        self.prompt_tokens = np.asarray(self.prompt_tokens, dtype=np.int64)
        if self.prompt_tokens.ndim != 1 or self.prompt_tokens.size == 0:
            raise ConfigError(
                f"request {self.request_id}: prompt_tokens must be a non-empty "
                f"1-D id array"
            )
        if self.decode_steps < 0:
            raise ConfigError(
                f"request {self.request_id}: decode_steps must be non-negative, "
                f"got {self.decode_steps}"
            )
        if self.arrival_time < 0:
            raise ConfigError(
                f"request {self.request_id}: arrival_time must be non-negative, "
                f"got {self.arrival_time}"
            )
        priority_rank(self.priority)  # validates the class name
        if self.tbt_deadline is not None and self.tbt_deadline <= 0:
            raise ConfigError(
                f"request {self.request_id}: tbt_deadline must be positive, "
                f"got {self.tbt_deadline}"
            )

    @classmethod
    def from_workload(cls, request_id: int, arrived: ArrivedWorkload) -> "Request":
        """Build a request from one serving-trace entry."""
        return cls(
            request_id=request_id,
            prompt_tokens=np.asarray(arrived.workload.prompt_tokens),
            decode_steps=arrived.workload.decode_steps,
            arrival_time=arrived.arrival_time,
            sample_seed=request_id,
            priority=arrived.priority,
            tbt_deadline=arrived.tbt_deadline,
        )

    def clone_for_failover(self, arrival_time: float) -> "Request":
        """Fresh copy for re-routing after a replica crash.

        The clone keeps the request's identity and sampling contract
        (id, prompt, decode budget, ``sample_seed``, class, deadline)
        but restarts the lifecycle: it arrives at the crash-observation
        instant and owes its full prefill and decode again — partial
        work died with the replica. Preemption history is wiped with
        the rest of the lifecycle (it described the dead replica's
        scheduling); the failover count carries over and increments.
        """
        return Request(
            request_id=self.request_id,
            prompt_tokens=self.prompt_tokens,
            decode_steps=self.decode_steps,
            arrival_time=arrival_time,
            sample_seed=self.sample_seed,
            priority=self.priority,
            tbt_deadline=self.tbt_deadline,
            num_failovers=self.num_failovers + 1,
            num_retries=self.num_retries,
        )

    def clone_for_retry(self, arrival_time: float) -> "Request":
        """Fresh copy for re-submission after a request timeout.

        The same lifecycle restart as :meth:`clone_for_failover` — the
        partial work was released with the timeout, so the clone owes
        its full prefill and decode — but it is the *retry* counter
        that increments, and the arrival instant carries the fleet's
        exponential backoff. The timeout budget restarts with the new
        arrival: each attempt gets the full ``request_timeout_s``.
        """
        return Request(
            request_id=self.request_id,
            prompt_tokens=self.prompt_tokens,
            decode_steps=self.decode_steps,
            arrival_time=arrival_time,
            sample_seed=self.sample_seed,
            priority=self.priority,
            tbt_deadline=self.tbt_deadline,
            num_failovers=self.num_failovers,
            num_retries=self.num_retries + 1,
        )

    # ------------------------------------------------------------------
    @property
    def priority_rank(self) -> int:
        """Numeric precedence of this request's class."""
        return priority_rank(self.priority)

    @property
    def relative_arrival(self) -> float:
        """Trace-relative arrival instant (warm-engine shift undone)."""
        return self.arrival_time - self.arrival_shift

    @property
    def prompt_len(self) -> int:
        """Prompt length in tokens."""
        return int(self.prompt_tokens.size)

    @property
    def tokens_remaining(self) -> int:
        """Decode tokens still owed once the request is decoding."""
        return self.decode_steps - len(self.tbt_values)

    @property
    def is_finished(self) -> bool:
        """Whether the request reached the FINISHED state."""
        return self.status is RequestStatus.FINISHED

    @property
    def is_terminal(self) -> bool:
        """Whether the request reached any terminal state."""
        return self.status in TERMINAL_STATUSES

    @property
    def is_preempted(self) -> bool:
        """Whether the request is currently paused by preemption."""
        return self.status is RequestStatus.PREEMPTED

    def to_record(self) -> RequestRecord:
        """Freeze the terminal lifecycle into a reporting record.

        Only terminal requests have records: ``finish_time`` is the
        completion instant for FINISHED, and the abort-observation
        instant for TIMED_OUT / SHED. A timed-out request may have a
        partial lifecycle (prefill started but no first token, say); a
        shed request has none — the record keeps those fields ``None``.
        """
        if self.status not in TERMINAL_STATUSES or self.finish_time is None:
            raise SimulationError(
                f"request {self.request_id} has not reached a terminal "
                f"status (status {self.status.value})"
            )
        if self.is_finished:
            # A completed lifecycle always has both prefill instants.
            assert self.prefill_start is not None
            assert self.first_token_time is not None
        return RequestRecord(
            request_id=self.request_id,
            prompt_len=self.prompt_len,
            decode_tokens=len(self.tbt_values),
            arrival_time=self.arrival_time,
            prefill_start=self.prefill_start,
            first_token_time=self.first_token_time,
            finish_time=self.finish_time,
            tbt_values=tuple(self.tbt_values),
            result=self.result,
            priority=self.priority,
            tbt_deadline=self.tbt_deadline,
            num_preemptions=self.num_preemptions,
            num_failovers=self.num_failovers,
            status=self.status.value,
            num_retries=self.num_retries,
        )
