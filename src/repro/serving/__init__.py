"""Multi-request serving: request lifecycle, admission, fused batching.

This package turns the single-generation engine into a serving system:

- :mod:`repro.serving.request` — the queued → prefill → decoding ⇄
  preempted → finished request lifecycle, with priority classes and
  optional per-request TBT deadlines;
- :mod:`repro.serving.scheduler` — priority-then-FCFS admission (plain
  FCFS with a single class), iteration-level continuous batching,
  chunked prefill and cooperative preemption policy;
- :mod:`repro.serving.session` — the serving loop as a stepwise
  :class:`~repro.serving.session.ServingSession` (one scheduler action
  per :meth:`~repro.serving.session.ServingSession.step`), which the
  fleet layer drives incrementally across replicas;
- :mod:`repro.serving.engine` — the batch driver fusing concurrent
  decode steps (and chunked-prefill slices) through one shared
  cache/scheduler/clock by stepping a session to completion.

Quickstart::

    from repro import make_engine
    from repro.serving import ServingEngine
    from repro.workloads import serving_workload

    engine = make_engine(strategy="hybrimoe", cache_ratio=0.25, num_layers=8)
    trace = serving_workload(num_requests=8, arrival_rate=2.0)
    report = ServingEngine(engine).serve_trace(trace)
    print(report.summary())
"""

from repro.serving.engine import ServingEngine, requests_from_trace
from repro.serving.request import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    TERMINAL_STATUSES,
    Request,
    RequestStatus,
    priority_rank,
)
from repro.serving.scheduler import (
    Action,
    ContinuousBatchingScheduler,
    ServingConfig,
)
from repro.serving.session import ServingSession

__all__ = [
    "PRIORITY_CLASSES",
    "DEFAULT_PRIORITY",
    "TERMINAL_STATUSES",
    "priority_rank",
    "Request",
    "RequestStatus",
    "ServingConfig",
    "Action",
    "ContinuousBatchingScheduler",
    "ServingEngine",
    "ServingSession",
    "requests_from_trace",
]
