"""Stepwise serving session: the serve loop as a resumable object.

:class:`ServingSession` owns the state of one continuous-batching
serving run — queue, fused decode batch, chunked prefill, preempted
set, per-request samplers — and advances it **one scheduler action at a
time**. :meth:`ServingSession.step` performs exactly one decision of
the :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`
(admit / prefill / decode / preempt / resume), so callers choose the
drive granularity:

- :meth:`~repro.serving.engine.ServingEngine.serve` loops ``step()``
  to completion — byte-for-byte the historical batch loop;
- the fleet layer (:mod:`repro.fleet`) interleaves many replica
  sessions on their own clocks, :meth:`submit`\\ s requests as the
  front-end router assigns them mid-run, and :meth:`abort`\\ s a
  session when a fault schedule crashes its replica, re-routing the
  surviving in-flight requests elsewhere.

The session is the bit-identity boundary: driving ``step()`` in a
tighter outer loop performs the same pipeline calls in the same order
as the historical ``serve()`` body, so a 1-replica fleet reproduces a
bare :class:`~repro.serving.engine.ServingEngine` exactly (the fleet
equivalence tests enforce this across all five strategies).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.engine.engine import InferenceEngine
from repro.engine.metrics import GenerationResult, ServingReport, StepMetrics
from repro.engine.pipeline import SequenceStep
from repro.errors import ConfigError
from repro.hardware.faults import DegradationEvent, HardwareFaultSchedule
from repro.rng import derive_rng
from repro.serving.request import Request, RequestStatus
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingConfig

__all__ = ["ServingSession"]


def _remove_by_identity(items: list[Request], target: Request) -> None:
    """Drop ``target`` from ``items`` by object identity.

    ``list.remove`` falls back to ``__eq__`` (field-wise on the
    dataclass, touching numpy arrays) for non-matching entries; the
    loop always holds the exact object, so identity is both safer and
    cheaper.
    """
    for index, item in enumerate(items):
        if item is target:
            del items[index]
            return
    raise ValueError(f"request {target.request_id} not in list")


class ServingSession:
    """One in-progress continuous-batching run, advanced action by action.

    Parameters
    ----------
    engine:
        The engine whose pipeline, cache and clock this run drives.
    config:
        Serving knobs (batch ceiling, decode token source, chunked
        prefill, preemption).
    requests:
        Initial request batch (more can arrive via :meth:`submit`).
    solo:
        Whether decode sampling should use the engine's solo stream for
        requests without an explicit ``sample_seed`` (the derivation
        ``InferenceEngine.generate`` uses). ``None`` (default) infers
        it from the initial batch size — the historical ``serve()``
        rule. The fleet passes the *fleet-wide* request count's verdict
        so a 1-replica fleet matches a bare engine bit-for-bit.
    origin:
        Clock value that trace time ``0`` maps to. ``None`` (default)
        anchors at the engine's current frontier — the bare-engine
        rule. The fleet passes one shared origin to every replica
        session so all sessions (and the merged report) live on a
        single fleet-wide time base even when replica clocks drifted
        apart over earlier serves.
    hardware_faults:
        Sub-replica hardware-fault schedule applied to this session's
        engine at step boundaries (link degradation, disk stalls, GPU
        stragglers). ``None`` (default) applies nothing — bit-identical
        to an unfaulted run, which is what the no-fire equivalence
        tests pin. The fleet passes each replica its
        :meth:`~repro.hardware.faults.HardwareFaultSchedule.for_replica`
        slice.
    replica_id:
        Fleet replica index this session serves (0 on a bare engine);
        selects which faults of ``hardware_faults`` apply and labels
        degradation-log events.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: ServingConfig | None = None,
        requests: Iterable[Request] = (),
        solo: bool | None = None,
        origin: float | None = None,
        hardware_faults: HardwareFaultSchedule | None = None,
        replica_id: int = 0,
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.hardware_faults = hardware_faults
        self.replica_id = replica_id
        self.scheduler = ContinuousBatchingScheduler(self.config)
        # Arrival times are trace-relative; on a warm engine (a second
        # serve, or a prior generate) they are shifted onto the clock's
        # frontier at session start, so queueing delays stay
        # meaningful. The shift is applied to each request once, at
        # admission — still-queued requests are never mutated, so a
        # serve retried after a mid-run failure cannot double-shift
        # them. A fresh engine has origin 0 (the bit-equivalence path).
        # The fleet passes an explicit ``origin`` — the *fleet-wide*
        # wall clock — so replica sessions whose engines drifted apart
        # over earlier serves still report on one shared time base.
        self.origin = (
            engine.runtime.clock.compute_frontier if origin is None else origin
        )
        cache = engine.runtime.cache
        assert cache is not None  # always bound by InferenceEngine.__init__
        stats_start = cache.stats  # one snapshot: aggregated on sharded caches
        #: Cache counters at session start; the report and per-request
        #: totals are deltas against it, so a warm engine (prior
        #: serve/generate) does not pollute a later report.
        self._stats_baseline = (stats_start.hits, stats_start.misses)
        self.queue: list[Request] = []
        self.running: list[Request] = []
        self.preempted: list[Request] = []
        self.prefilling: Request | None = None
        self.finished: list[Request] = []
        #: Requests aborted for exceeding ``request_timeout_s``.
        self.timed_out: list[Request] = []
        #: Requests refused admission by overload shedding.
        self.shed: list[Request] = []
        #: Timeouts not yet claimed by the fleet's retry logic (cleared
        #: by :meth:`claim_fresh_timeouts`; ignored on a bare engine).
        self._fresh_timeouts: list[Request] = []
        #: Hardware-degradation log: one event per change of the
        #: active-fault set observed at a step boundary.
        self.degradation_log: list[DegradationEvent] = []
        #: Active faults at the last step boundary (change detector for
        #: the log — a disk stall's numeric state shrinks every step,
        #: which is re-costing churn, not a loggable transition).
        self._active_faults: tuple = ()
        self.samplers: dict[int, np.random.Generator] = {}
        self.preemptions = 0
        #: High-water mark of batch occupancy (decoding + mid-prefill),
        #: the observable the fleet property tests pin against
        #: ``max_batch_size``.
        self.peak_occupancy = 0
        #: Set by :meth:`abort` — a dead session takes no more steps.
        self.dead = False
        self._submitted: list[Request] = []
        self._ids: set[int] = set()
        initial = list(requests)
        self.solo = (len(initial) == 1) if solo is None else solo
        if initial:
            self.submit(initial)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(self, requests: Iterable[Request]) -> None:
        """Queue more requests (validated like a ``serve()`` batch).

        Requests are single-use and owned by the session once
        submitted. Ids must be unique across the whole session, not
        just within one submission — the fleet relies on this to keep
        failover re-submissions honest.
        """
        batch = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        ids = [r.request_id for r in batch]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate request ids in batch: {sorted(ids)}")
        collisions = self._ids & set(ids)
        if collisions:
            raise ConfigError(
                f"request ids already submitted to this session: "
                f"{sorted(collisions)}"
            )
        for request in batch:
            if request.status is not RequestStatus.QUEUED:
                raise ConfigError(
                    f"request {request.request_id} was already served "
                    f"(status {request.status.value})"
                )
        self._ids.update(ids)
        self._submitted.extend(batch)
        self.queue.extend(batch)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current trace-relative time (clock frontier minus origin)."""
        return self.engine.runtime.clock.compute_frontier - self.origin

    @property
    def occupancy(self) -> int:
        """Batch occupancy: decoding requests plus a mid-prefill one."""
        return len(self.running) + (1 if self.prefilling is not None else 0)

    def has_work(self) -> bool:
        """Whether any submitted request is still unfinished here."""
        return bool(
            self.queue
            or self.running
            or self.preempted
            or self.prefilling is not None
        )

    def is_idle(self) -> bool:
        """Nothing running and no *arrived* queued request.

        In this state the next action is an idle jump (admitting a
        future arrival with a ``not_before`` floor) or nothing at all.
        The fleet holds an idle session instead of stepping it whenever
        an unrouted arrival could still win the idle jump's tie-break,
        preserving bare-engine admission order.
        """
        if self.running or self.preempted or self.prefilling is not None:
            return False
        now = self.now
        return not any(r.arrival_time <= now for r in self.queue)

    def next_queued_arrival(self) -> float | None:
        """Earliest trace-relative arrival among queued requests."""
        return min((r.relative_arrival for r in self.queue), default=None)

    def in_flight(self) -> list[Request]:
        """Submitted requests not yet terminal, in submission order."""
        return [r for r in self._submitted if not r.is_terminal]

    def claim_fresh_timeouts(self) -> list[Request]:
        """Hand unclaimed timeout victims to the caller (fleet retries).

        Each timed-out request is returned exactly once across all
        calls; a bare-engine serve never calls this and simply reports
        the timeouts as terminal records.
        """
        fresh = self._fresh_timeouts
        self._fresh_timeouts = []
        return fresh

    def reclaim(self, request: Request) -> None:
        """Un-record a timed-out request the fleet will retry elsewhere.

        Drops the victim from this session's terminal set and frees its
        id fleet-wide, so the retry clone's eventual terminal record is
        the *only* record of the request — the exactly-one-terminal-
        status invariant holds across retries just as it does across
        failovers.
        """
        _remove_by_identity(self.timed_out, request)
        _remove_by_identity(self._submitted, request)
        self._ids.discard(request.request_id)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Perform one scheduler action; False when there is none left.

        Degradation state, request timeouts and overload shedding are
        all observed here, at the step boundary, *before* the scheduler
        decision — the same observation discipline as replica crashes,
        so the fast and reference planner paths cost a degraded link
        identically and a deadline passing mid-step takes effect at the
        next boundary.
        """
        if self.dead:
            return False
        # The policy reasons in trace-relative time; admission floors
        # are translated back to absolute clock time.
        now = self.now
        self._apply_degradation(now)
        self._sweep_timeouts(now)
        self._sweep_shedding(now)
        if not self.has_work():
            return False
        engine = self.engine
        action = self.scheduler.next_action(
            now,
            self.queue,
            self.running,
            prefilling=self.prefilling,
            preempted=self.preempted,
        )
        # Unreachable with a consistent queue/batch state: has_work()
        # guaranteed at least one request in some holding structure, and
        # every branch of next_action() yields an action for a non-empty
        # state (an empty batch with queued work takes the idle jump).
        # Kept as a defensive guard so a policy bug degrades to loop
        # termination instead of an infinite loop.
        if action is None:  # pragma: no cover - defensive
            return False
        if action.kind == "admit":
            request = action.request
            assert request is not None
            _remove_by_identity(self.queue, request)
            request.arrival_shift = self.origin
            request.arrival_time += self.origin
            # Chunk boundaries exist to bound the decode stalls of
            # *SLO-class* decoders (any class above the default): while
            # one is decoding, every admitted prompt — whatever its own
            # class — prefills in slices. Default-class decoders eat
            # whole-prompt stalls, so a default-only run never pays
            # slice overhead.
            protect = any(r.priority_rank > 0 for r in self.running)
            complete = self._prefill(
                request,
                action.not_before + self.origin,
                chunked=protect,
            )
            if not complete:
                self.prefilling = request
            elif request.decode_steps == 0:
                self._finish(request, request.first_token_time)
                self.finished.append(request)
            else:
                request.status = RequestStatus.DECODING
                self.running.append(request)
        elif action.kind == "prefill":
            request = action.request
            assert request is self.prefilling and not self.running
            # No decoders left to protect: the remaining prompt runs as
            # one dedicated step.
            self._prefill_remainder(request)
            self.prefilling = None
            if request.decode_steps == 0:
                self._finish(request, request.first_token_time)
                self.finished.append(request)
            else:
                request.status = RequestStatus.DECODING
                self.running.append(request)
        elif action.kind == "preempt":
            victim = action.request
            assert victim is not None
            _remove_by_identity(self.running, victim)
            victim.status = RequestStatus.PREEMPTED
            victim.num_preemptions += 1
            self.preempted.append(victim)
            self.preemptions += 1
        elif action.kind == "resume":
            request = action.request
            assert request is not None
            _remove_by_identity(self.preempted, request)
            request.status = RequestStatus.DECODING
            self.running.append(request)
        else:
            done, chunk_complete = self._decode_step()
            for request in done:
                _remove_by_identity(self.running, request)
                self.finished.append(request)
            if chunk_complete:
                request = self.prefilling
                self.prefilling = None
                if request.decode_steps == 0:
                    self._finish(request, request.first_token_time)
                    self.finished.append(request)
                else:
                    request.status = RequestStatus.DECODING
                    self.running.append(request)
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return True

    # ------------------------------------------------------------------
    # step-boundary observations (degradation, timeouts, shedding)
    # ------------------------------------------------------------------
    def _apply_degradation(self, now: float) -> None:
        """Apply the fault schedule's state for this step boundary.

        ``set_degradation`` is a no-op returning False while the state
        is unchanged (in particular, always outside fault windows), so
        an unfired schedule costs one state comparison per step and
        changes no durations. The log appends only when the *set* of
        active faults changes — a disk stall's remaining time shrinks
        every boundary, which is re-costing churn, not a transition
        worth logging.
        """
        schedule = self.hardware_faults
        if schedule is None:
            return
        state = schedule.state_at(now, self.replica_id)
        self.engine.set_degradation(state)
        active = schedule.active_faults(self.replica_id, now)
        if active != self._active_faults:
            self._active_faults = active
            self.degradation_log.append(
                DegradationEvent(time=now, state=state, replica=self.replica_id)
            )

    def _abort_request(
        self, request: Request, now: float, status: RequestStatus
    ) -> None:
        """Terminate a request without completion (timeout or shed).

        ``finish_time`` is the abort-*observation* instant — the first
        step boundary at/after the deadline, the same discipline as
        crash observation — in absolute clock seconds like every other
        record time. Partial decode state and the sampler are released;
        cache residency earned on the request's behalf stays (warmed
        experts are not un-warmed).
        """
        if request.status is RequestStatus.QUEUED:
            # Never admitted: apply the admission-time arrival shift now
            # so the record's times are absolute like admitted ones'.
            request.arrival_shift = self.origin
            request.arrival_time += self.origin
        request.status = status
        request.finish_time = now + self.origin
        if request.request_id in self.engine.states:
            self.engine.states.pop(request.request_id)
        self.samplers.pop(request.request_id, None)

    def _sweep_timeouts(self, now: float) -> None:
        """Abort every non-terminal request past its timeout budget.

        The budget is end-to-end from the request's (trace-relative)
        arrival, so queueing time counts — a request shed of its slot
        by overload is exactly the kind the timeout exists to cut
        loose. Finished requests are immune: completion at the
        deadline instant beats aborting work already delivered.
        """
        timeout = self.config.request_timeout_s
        if timeout is None:
            return

        def expired(request: Request) -> bool:
            return now >= request.relative_arrival + timeout

        victims = [r for r in self.queue if expired(r)]
        victims += [r for r in self.running if expired(r)]
        victims += [r for r in self.preempted if expired(r)]
        if self.prefilling is not None and expired(self.prefilling):
            victims.append(self.prefilling)
        for request in victims:
            if request is self.prefilling:
                self.prefilling = None
            elif request.status is RequestStatus.QUEUED:
                _remove_by_identity(self.queue, request)
            elif request.status is RequestStatus.PREEMPTED:
                _remove_by_identity(self.preempted, request)
            else:
                _remove_by_identity(self.running, request)
            self._abort_request(request, now, RequestStatus.TIMED_OUT)
            self.timed_out.append(request)
            self._fresh_timeouts.append(request)

    def _sweep_shedding(self, now: float) -> None:
        """Refuse queued arrivals beyond the overload watermark.

        Watermark hysteresis: the sweep only fires once the *arrived*
        backlog reaches the high watermark, then sheds down to the low
        one in a single batch — so admission runs undisturbed until
        the backlog climbs all the way back, instead of oscillating
        around one threshold. Victims are picked lowest class first
        and newest arrival within a class, so interactive requests
        shed last and the oldest waiters keep their place.
        """
        high = self.config.shed_queue_depth
        if high is None:
            return
        arrived = [r for r in self.queue if r.relative_arrival <= now]
        if len(arrived) < high:
            return
        low = self.config.shed_resume_depth
        if low is None:
            low = high // 2
        while len(arrived) > low:
            victim = min(
                arrived,
                key=lambda r: (
                    r.priority_rank,
                    -r.relative_arrival,
                    -r.request_id,
                ),
            )
            _remove_by_identity(arrived, victim)
            _remove_by_identity(self.queue, victim)
            self._abort_request(victim, now, RequestStatus.SHED)
            self.shed.append(victim)

    # ------------------------------------------------------------------
    # teardown & reporting
    # ------------------------------------------------------------------
    def release_states(self) -> None:
        """Drop decode states of unfinished requests (engine stays usable).

        A mid-run failure (strategy bug, interrupt, replica crash) must
        not leave orphaned decode states behind.
        """
        for request in self._submitted:
            if (
                not request.is_terminal
                and request.request_id in self.engine.states
            ):
                self.engine.states.pop(request.request_id)

    def abort(self) -> list[Request]:
        """Kill the session (replica crash) and return the in-flight set.

        Finished requests keep their records (they completed before the
        fault); everything else — queued, mid-prefill, decoding or
        preempted — is returned for the caller to re-route. Their
        decode states are released so the engine object stays valid
        even though the fleet will never step this session again.
        """
        survivors = self.in_flight()
        self.release_states()
        self.queue.clear()
        self.running.clear()
        self.preempted.clear()
        self.prefilling = None
        self.dead = True
        return survivors

    def report(self) -> ServingReport:
        """Freeze the terminal requests into a serving report."""
        engine = self.engine
        cache = engine.runtime.cache
        assert cache is not None
        final_stats = cache.stats
        hits_before, misses_before = self._stats_baseline
        terminal = self.finished + self.timed_out + self.shed
        return ServingReport(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            max_batch_size=self.config.max_batch_size,
            requests=sorted(
                (r.to_record() for r in terminal),
                key=lambda r: r.request_id,
            ),
            total_hits=final_stats.hits - hits_before,
            total_misses=final_stats.misses - misses_before,
            preemptions=self.preemptions,
            degradations=list(self.degradation_log),
        )

    # ------------------------------------------------------------------
    # the per-action mechanics (the historical serve() helpers)
    # ------------------------------------------------------------------
    def _sampler(self, request: Request) -> np.random.Generator:
        """Per-request decode-sampling stream.

        A solo request with ``sample_seed=None`` gets byte-for-byte the
        stream ``InferenceEngine.generate`` derives, preserving
        single-request bit-equivalence. In a multi-request run an unset
        seed falls back to the request id — otherwise every default
        request would share one stream and identical prompts would
        decode identical token trajectories, faking cache affinity.
        """
        seed = self.engine.config.seed
        if request.sample_seed is None:
            if self.solo:
                return derive_rng(seed, "engine", "decode-sampling")
            # Distinct namespace from explicit seeds, so an explicit
            # sample_seed equal to another request's id cannot collide
            # with that request's auto-derived stream.
            return derive_rng(
                seed, "engine", "decode-sampling", "auto", request.request_id
            )
        return derive_rng(seed, "engine", "decode-sampling", request.sample_seed)

    def _prefill(
        self,
        request: Request,
        not_before: float,
        chunked: bool = False,
    ) -> bool:
        """Admit one request: create its state and start its prefill.

        Returns True when the prefill completed; False when the request
        entered a chunked prefill and owes more chunks. ``chunked`` is
        whether a strictly-higher-priority request is currently
        decoding: chunk boundaries exist to bound *its* stalls, so with
        nothing to protect (idle platform, or only peers/lower classes
        decoding) the whole prompt runs in one step instead of paying
        per-slice step overhead for nobody's benefit.
        """
        engine = self.engine
        chunk = self.config.prefill_chunk_tokens
        # Leave QUEUED before any fallible work: a failed admission must
        # not leave the request replayable (its arrival was shifted).
        request.status = RequestStatus.PREFILL
        state = engine.states.create(request.request_id)
        if chunked and chunk is not None and request.prompt_len > chunk:
            # First slice of a chunked prefill; the remaining slices
            # ride the fused decode steps (one hybrid step per slice).
            result = engine.pipeline.run_batch(
                [SequenceStep(request.prompt_tokens[:chunk], state)],
                "prefill",
                not_before=max(not_before, request.arrival_time),
            )
            request.prefill_pos = chunk
            request.prefill_chunks.append(result.metrics)
            request.prefill_start = result.metrics.start
            return False
        result = engine.pipeline.run_batch(
            [SequenceStep(request.prompt_tokens, state)],
            "prefill",
            not_before=max(not_before, request.arrival_time),
        )
        metrics = result.metrics
        request.prefill_start = metrics.start
        self._seal_prefill(request, metrics, result.hidden[0][-1])
        return True

    def _prefill_remainder(self, request: Request) -> None:
        """Finish a chunked prefill with the batch drained.

        With no request left decoding there is no stall to bound, so
        the whole remaining prompt runs as one final slice instead of
        paying per-chunk step overhead for nobody's benefit.
        """
        engine = self.engine
        assert request.prefill_pos > 0
        tokens = request.prompt_tokens[request.prefill_pos :]
        result = engine.pipeline.run_batch(
            [SequenceStep(tokens, engine.states.get(request.request_id))],
            "prefill",
        )
        request.prefill_pos = request.prompt_len
        request.prefill_chunks.append(result.metrics)
        merged = self._merged_prefill_metrics(request)
        self._seal_prefill(request, merged, result.hidden[0][-1])

    def _merged_prefill_metrics(self, request: Request) -> StepMetrics:
        """Collapse a chunked prefill into one logical prefill metric.

        The span runs from the first chunk's start to the last chunk's
        end — the price the request actually paid. Hits/misses are
        summed (hybrid slices share their fused step's counters with
        the decode batch, the same fleet-level convention as fused
        decode metrics) and utilisation is the duration-weighted mean
        of the chunks' own windows.
        """
        chunks = request.prefill_chunks
        durations = [c.duration for c in chunks]
        total = sum(durations)
        keys = chunks[0].utilization.keys()
        if total > 0:
            utilization = {
                k: sum(c.utilization.get(k, 0.0) * d for c, d in zip(chunks, durations))
                / total
                for k in keys
            }
        else:  # pragma: no cover - defensive
            # Unreachable with the analytic cost model: every prefill
            # chunk carries >= 1 token, and the per-token expert costs
            # are strictly positive, so durations cannot sum to zero.
            # Kept so a future zero-cost model degrades to "copy the
            # first chunk's utilisation" instead of dividing by zero.
            utilization = dict(chunks[0].utilization)
        return StepMetrics(
            stage="prefill",
            n_tokens=request.prompt_len,
            start=chunks[0].start,
            end=chunks[-1].end,
            hits=sum(c.hits for c in chunks),
            misses=sum(c.misses for c in chunks),
            utilization=utilization,
            batch_size=1,
        )

    def _seal_prefill(
        self,
        request: Request,
        metrics: StepMetrics,
        last_hidden: np.ndarray,
    ) -> None:
        """Record prefill completion: first token, result, sampler."""
        engine = self.engine
        request.first_token_time = metrics.end
        request.last_token_time = metrics.end
        request.last_hidden = last_hidden
        request.result = GenerationResult(
            model_name=engine.model.config.name,
            strategy_name=engine.strategy.name,
            cache_ratio=engine.config.cache_ratio,
            prefill=metrics,
        )
        self.samplers[request.request_id] = self._sampler(request)

    def _decode_step(self) -> tuple[list[Request], bool]:
        """Advance every running request one token in one fused step.

        With a chunked prefill in progress, its next slice rides the
        same step as one extra sequence (a *hybrid* step): attention is
        charged once for the combined token count and the slice's
        experts are planned together with the decode batch's union, so
        chunking adds no dedicated steps while anyone is decoding.

        Returns the requests that finished and whether the hybrid
        slice completed the prefill.
        """
        engine = self.engine
        model = engine.model
        prefilling = self.prefilling
        batch: list[SequenceStep] = []
        for request in self.running:
            assert request.last_hidden is not None
            if self.config.decode_token_source == "greedy":
                token = model.greedy_next_token(request.last_hidden)
            else:
                token = model.sample_next_token(
                    request.last_hidden, self.samplers[request.request_id]
                )
            request.output_tokens.append(token)
            batch.append(
                SequenceStep(
                    np.array([token]), engine.states.get(request.request_id)
                )
            )
        chunk_end = 0
        if prefilling is not None:
            chunk = self.config.prefill_chunk_tokens
            assert chunk is not None and prefilling.prefill_pos > 0
            chunk_end = min(prefilling.prefill_pos + chunk, prefilling.prompt_len)
            batch.append(
                SequenceStep(
                    prefilling.prompt_tokens[prefilling.prefill_pos : chunk_end],
                    engine.states.get(prefilling.request_id),
                )
            )
        result = engine.pipeline.run_batch(batch, "decode")
        metrics = result.metrics
        chunk_complete = False
        if prefilling is not None:
            prefilling.prefill_pos = chunk_end
            prefilling.prefill_chunks.append(metrics)
            if chunk_end == prefilling.prompt_len:
                self._seal_prefill(
                    prefilling,
                    self._merged_prefill_metrics(prefilling),
                    result.hidden[-1][-1],
                )
                chunk_complete = True
        done: list[Request] = []
        for index, request in enumerate(self.running):
            request.last_hidden = result.hidden[index][-1]
            assert request.result is not None
            request.result.decode_steps.append(metrics)
            # TBT is the gap between consecutive token *emissions*, so
            # stalls from interleaved prefills of other requests (and
            # time spent preempted) count against the waiting
            # request's tokens. With contiguous decode steps (any
            # single-request run) the gap equals the step duration
            # exactly, preserving generate-equivalence.
            assert request.last_token_time is not None
            request.tbt_values.append(metrics.end - request.last_token_time)
            request.last_token_time = metrics.end
            if request.tokens_remaining == 0:
                self._finish(request, metrics.end)
                done.append(request)
        return done, chunk_complete

    def _finish(self, request: Request, finish_time: float | None) -> None:
        """Seal a completed request and release its decode state.

        ``request.result`` mirrors what ``generate`` would report on
        the engine, which in a multi-request run means *fleet-level*
        numbers: ``total_hits/total_misses`` snapshot the shared cache
        counters at finish time, and ``decode_steps`` hold the fused
        batch steps (so ``result.tbt_values`` are step durations, not
        this request's emission gaps). Per-request truth lives on the
        :class:`~repro.engine.metrics.RequestRecord` (``tbt_values``,
        percentiles) and fleet comparisons in the
        :class:`~repro.engine.metrics.ServingReport`.
        """
        assert finish_time is not None
        request.status = RequestStatus.FINISHED
        request.finish_time = finish_time
        cache = self.engine.runtime.cache
        if request.result is not None and cache is not None:
            hits_before, misses_before = self._stats_baseline
            stats_now = cache.stats
            request.result.total_hits = stats_now.hits - hits_before
            request.result.total_misses = stats_now.misses - misses_before
        self.engine.states.pop(request.request_id)
