"""Warmup calibration: fit duration models from probe measurements.

The paper's system "begins with a warmup phase to collect essential
performance metrics, such as CPU and GPU processing speeds and data
transfer latency" (§IV-A). :class:`WarmupCalibrator` reproduces that
phase against our hardware substrate: it probes a ground-truth
:class:`~repro.hardware.cost_model.CostModel` at a handful of token
counts per expert shape and fits per-shape linear models, yielding the
:class:`~repro.hardware.cost_model.FittedCostModel` the *planner* uses.

Keeping planner estimates distinct from executed durations matters: it
exercises the same estimate-vs-reality gap a deployed system has, and
robustness tests widen that gap with :class:`NoisyCostModel`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hardware.cost_model import CostModel, FittedCostModel, LinearFit
from repro.models.config import ExpertShape, MoEModelConfig

__all__ = ["WarmupCalibrator"]

_DEFAULT_PROBE_TOKENS = (1, 4, 16, 64, 256, 1024)


def _fit_linear(tokens: np.ndarray, durations: np.ndarray) -> LinearFit:
    """Least-squares affine fit with non-negative coefficients."""
    design = np.stack([np.ones_like(tokens, dtype=np.float64), tokens.astype(np.float64)])
    coeffs, *_ = np.linalg.lstsq(design.T, durations, rcond=None)
    base, per_token = float(coeffs[0]), float(coeffs[1])
    return LinearFit(base=max(base, 0.0), per_token=max(per_token, 0.0))


class WarmupCalibrator:
    """Fits a :class:`FittedCostModel` by probing a ground-truth model.

    Parameters
    ----------
    ground_truth:
        The cost model playing the role of the physical platform.
    probe_tokens:
        Token counts probed per shape; the fit quality (and therefore
        planner accuracy) grows with coverage, mirroring longer warmups
        on the real system.
    repeats:
        Number of probe repetitions per point. Only meaningful when the
        ground truth is noisy; repeated probes are averaged.
    """

    def __init__(
        self,
        ground_truth: CostModel,
        probe_tokens: tuple[int, ...] = _DEFAULT_PROBE_TOKENS,
        repeats: int = 1,
    ) -> None:
        if not probe_tokens:
            raise ConfigError("probe_tokens must be non-empty")
        if any(t <= 0 for t in probe_tokens):
            raise ConfigError(f"probe tokens must be positive, got {probe_tokens}")
        if repeats <= 0:
            raise ConfigError(f"repeats must be positive, got {repeats}")
        self._ground_truth = ground_truth
        self._probe_tokens = tuple(sorted(set(probe_tokens)))
        self._repeats = repeats

    def _probe(self, measure) -> np.ndarray:
        """Average ``repeats`` measurements at each probe point."""
        values = [
            float(np.mean([measure(t) for _ in range(self._repeats)]))
            for t in self._probe_tokens
        ]
        return np.array(values, dtype=np.float64)

    def calibrate(self, config: MoEModelConfig) -> FittedCostModel:
        """Run the warmup phase for one model's expert shapes.

        Probes every distinct expert shape (routed and shared) plus the
        attention path for the model's hidden size, and returns the
        fitted planner-side cost model.
        """
        shapes: list[ExpertShape] = [config.routed_expert_shape]
        if config.shared_expert_shape is not None:
            shapes.append(config.shared_expert_shape)
        # De-duplicate while keeping order (DeepSeek's shared == routed shape).
        unique_shapes = list(dict.fromkeys(shapes))

        tokens = np.array(self._probe_tokens, dtype=np.int64)
        gpu_fits: dict[ExpertShape, LinearFit] = {}
        cpu_fits: dict[ExpertShape, LinearFit] = {}
        transfer_times: dict[ExpertShape, float] = {}
        disk_transfer_times: dict[ExpertShape, float] = {}
        for shape in unique_shapes:
            gpu_durations = self._probe(
                lambda t, s=shape: self._ground_truth.gpu_expert_time(s, int(t))
            )
            cpu_durations = self._probe(
                lambda t, s=shape: self._ground_truth.cpu_expert_time(s, int(t))
            )
            gpu_fits[shape] = _fit_linear(tokens, gpu_durations)
            cpu_fits[shape] = _fit_linear(tokens, cpu_durations)
            transfers = [
                self._ground_truth.transfer_time(shape) for _ in range(self._repeats)
            ]
            transfer_times[shape] = float(np.mean(transfers))
            # Platforms with a disk tier get their disk reads probed
            # too; two-tier platforms raise, and the fitted model then
            # raises on disk queries exactly like the ground truth.
            try:
                disk_reads = [
                    self._ground_truth.disk_transfer_time(shape)
                    for _ in range(self._repeats)
                ]
            except ConfigError:
                pass
            else:
                disk_transfer_times[shape] = float(np.mean(disk_reads))

        # Estimate the CPU cold-start penalty by differencing first-task
        # and steady-state probes at one token.
        small_shape = unique_shapes[0]
        first = float(
            np.mean(
                [
                    self._ground_truth.cpu_expert_time(small_shape, 1, first_task=True)
                    for _ in range(self._repeats)
                ]
            )
        )
        steady = float(
            np.mean(
                [
                    self._ground_truth.cpu_expert_time(small_shape, 1, first_task=False)
                    for _ in range(self._repeats)
                ]
            )
        )
        cpu_warmup = max(first - steady, 0.0)

        d_model = config.routed_expert_shape.d_model
        attention_fits = {}
        for device in ("gpu", "cpu"):
            durations = self._probe(
                lambda t, dev=device: self._ground_truth.attention_time(
                    d_model, int(t), device=dev
                )
            )
            attention_fits[(d_model, device)] = _fit_linear(tokens, durations)

        bytes_per_param = (
            self._ground_truth.expert_bytes(small_shape) / small_shape.param_count
        )
        return FittedCostModel(
            gpu_fits=gpu_fits,
            cpu_fits=cpu_fits,
            cpu_warmup_s=cpu_warmup,
            transfer_times=transfer_times,
            attention_fits=attention_fits,
            bytes_per_param=bytes_per_param,
            disk_transfer_times=disk_transfer_times,
        )
