"""Hardware substrate: analytic cost models and resource timelines.

This package replaces the paper's physical testbed (RTX A6000 + 10-core
Xeon + PCIe) with an analytic roofline cost model and discrete-event
resource timelines. The cost model is calibrated to the paper's measured
behaviour (Fig. 3e/f): GPU expert time is roughly constant in the token
load (weight-bandwidth bound at inference batch sizes), CPU time grows
linearly with load (FLOP bound) with a first-task warmup penalty, and
PCIe transfer time is constant per expert.

Profiles also describe a disk tier (``disk_bw``), the bottom of the
tiered memory hierarchy: on platforms whose host DRAM is itself
capacity-limited, spilled experts pay a constant-per-expert disk read
on a platform-shared disk link before any CPU compute or PCIe
transfer (see ``docs/MEMORY.md``).
"""

from repro.hardware.cost_model import (
    AnalyticCostModel,
    CostModel,
    FittedCostModel,
    HardwareProfile,
    NoisyCostModel,
)
from repro.hardware.device import ResourceTimeline, TimelineInterval
from repro.hardware.faults import (
    HARDWARE_FAULT_KINDS,
    DegradationEvent,
    DegradationState,
    DegradedCostModel,
    HardwareFault,
    HardwareFaultSchedule,
)
from repro.hardware.platform_presets import (
    HARDWARE_PRESETS,
    cpu_weak_testbed,
    disk_slow_testbed,
    edge_testbed,
    get_hardware_preset,
    paper_testbed,
    pcie_fast_testbed,
)
from repro.hardware.simulator import Resource, ThreeResourceClock
from repro.hardware.warmup import WarmupCalibrator

__all__ = [
    "CostModel",
    "AnalyticCostModel",
    "FittedCostModel",
    "NoisyCostModel",
    "HardwareProfile",
    "HARDWARE_FAULT_KINDS",
    "HardwareFault",
    "HardwareFaultSchedule",
    "DegradationState",
    "DegradationEvent",
    "DegradedCostModel",
    "ResourceTimeline",
    "TimelineInterval",
    "Resource",
    "ThreeResourceClock",
    "WarmupCalibrator",
    "HARDWARE_PRESETS",
    "paper_testbed",
    "cpu_weak_testbed",
    "pcie_fast_testbed",
    "disk_slow_testbed",
    "edge_testbed",
    "get_hardware_preset",
]
