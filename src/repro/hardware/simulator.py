"""Three-resource discrete-event clock (GPU, CPU, PCIe).

:class:`ThreeResourceClock` bundles the three serial resources of the
hybrid platform and provides the barrier semantics the engine needs:

- a **layer barrier** waits for CPU and GPU compute to drain (the next
  layer's attention consumes the MoE output), while PCIe transfers may
  keep flowing past the barrier — exactly the overlap HybriMoE's
  prefetcher exploits;
- utilisation accounting over arbitrary windows for the balance metrics
  reported in the experiments.
"""

from __future__ import annotations

from enum import Enum

from repro.hardware.device import ResourceTimeline

__all__ = ["Resource", "ThreeResourceClock"]


class Resource(str, Enum):
    """The three serial resources of the hybrid platform."""

    GPU = "gpu"
    CPU = "cpu"
    PCIE = "pcie"


class ThreeResourceClock:
    """Absolute-time ledger for GPU, CPU and PCIe timelines."""

    def __init__(self) -> None:
        self.gpu = ResourceTimeline("gpu")
        self.cpu = ResourceTimeline("cpu")
        self.pcie = ResourceTimeline("pcie")

    def timeline(self, resource: Resource) -> ResourceTimeline:
        """The ledger of one resource."""
        if resource == Resource.GPU:
            return self.gpu
        if resource == Resource.CPU:
            return self.cpu
        return self.pcie

    @property
    def compute_frontier(self) -> float:
        """Earliest time both compute resources are free (layer barrier).

        PCIe deliberately excluded: in-flight prefetch transfers overlap
        the next layer's attention.
        """
        return max(self.gpu.available_at, self.cpu.available_at)

    @property
    def frontier(self) -> float:
        """Earliest time all three resources are free."""
        return max(self.compute_frontier, self.pcie.available_at)

    def utilization_summary(
        self, window_start: float, window_end: float
    ) -> dict[str, float]:
        """Busy fractions per resource over a window."""
        return {
            "gpu": self.gpu.utilization(window_start, window_end),
            "cpu": self.cpu.utilization(window_start, window_end),
            "pcie": self.pcie.utilization(window_start, window_end),
        }

    def validate(self) -> None:
        """Validate no-overlap invariants on all three timelines."""
        self.gpu.validate()
        self.cpu.validate()
        self.pcie.validate()
