"""Multi-resource discrete-event clock (N GPUs, CPU, N PCIe links, disk).

:class:`ThreeResourceClock` bundles the serial resources of the hybrid
platform and provides the barrier semantics the engine needs:

- a **layer barrier** waits for CPU and every GPU's compute to drain
  (the next layer's attention consumes the MoE output), while PCIe
  transfers may keep flowing past the barrier — exactly the overlap
  HybriMoE's prefetcher exploits;
- utilisation accounting over arbitrary windows for the balance metrics
  reported in the experiments.

Historically the clock modelled the paper's single-GPU testbed (one
GPU, one CPU, one PCIe link — hence the class name, kept for
compatibility). It now generalises to ``num_gpus`` devices, each with
its **own compute timeline and its own host-to-device PCIe link** (the
common topology of multi-GPU inference servers, where every card hangs
off its own root-port lanes). The CPU remains a single shared resource.
With ``num_gpus=1`` the clock is bit-identical to the historical
three-resource behaviour: ``clock.gpu`` and ``clock.pcie`` alias device
0's timelines and carry the original resource names.

With ``disk=True`` the clock additionally owns a single **disk -> host
link** shared by the whole platform (one NVMe/SSD feeding DRAM). It
serialises the disk reads of the tiered memory hierarchy: staging a
spilled expert into DRAM before it can be CPU-computed or ride a PCIe
link to a GPU. Like PCIe, the disk link is excluded from the layer
barrier — reads overlap the next layer's attention. Without the flag
(the default) no disk timeline exists and the clock is unchanged.
"""

from __future__ import annotations

import heapq
from enum import Enum

from repro.errors import SimulationError
from repro.hardware.device import ResourceTimeline

__all__ = ["Resource", "ThreeResourceClock"]


class Resource(str, Enum):
    """The resource kinds of the hybrid platform."""

    GPU = "gpu"
    CPU = "cpu"
    PCIE = "pcie"
    DISK = "disk"


class ThreeResourceClock:
    """Absolute-time ledger for GPU, CPU and PCIe timelines.

    Parameters
    ----------
    num_gpus:
        Number of simulated GPU devices. Each device ``g`` owns two
        timelines: ``gpus[g]`` (compute) and ``pcie_links[g]`` (its
        host-to-device link). The CPU timeline is shared by all.
    disk:
        Model a platform-shared disk -> host link (the third tier of
        the memory hierarchy). ``clock.disk`` is ``None`` when False.
    fast:
        Cache the frontier queries (event-driven running maxima plus a
        lazy min-heap over the PCIe links) so ``compute_frontier`` /
        ``frontier`` / ``min_pcie_available_at`` stop rescanning every
        per-device timeline on each call. Frontiers are pure max/min
        selections over the exact same ``available_at`` floats — no new
        arithmetic — so cached answers are bit-identical; ``False``
        keeps the historical rescan as a perf baseline
        (``EngineConfig.engine_fast_path`` threads through here).
    """

    def __init__(
        self, num_gpus: int = 1, disk: bool = False, fast: bool = True
    ) -> None:
        if num_gpus < 1:
            raise SimulationError(f"num_gpus must be >= 1, got {num_gpus}")
        self.num_gpus = num_gpus
        self.fast = fast
        if num_gpus == 1:
            # Historical single-device resource names, so labels and
            # error messages are unchanged on the paper's testbed.
            self.gpus = [ResourceTimeline("gpu", fast=fast)]
            self.pcie_links = [ResourceTimeline("pcie", fast=fast)]
        else:
            self.gpus = [
                ResourceTimeline(f"gpu{g}", fast=fast) for g in range(num_gpus)
            ]
            self.pcie_links = [
                ResourceTimeline(f"pcie{g}", fast=fast) for g in range(num_gpus)
            ]
        self.cpu = ResourceTimeline("cpu", fast=fast)
        self.disk: ResourceTimeline | None = (
            ResourceTimeline("disk", fast=fast) if disk else None
        )
        if fast:
            # Event-driven frontier caches: every timeline notifies the
            # clock when its available_at advances. The compute/full
            # frontiers are running maxima (available_at is monotone
            # per timeline, so the max only ever moves forward); the
            # PCIe minimum is a lazily-invalidated heap of
            # (available_at, device) events - stale entries are popped
            # on read by comparing against the link's live value.
            self._compute_frontier_cache = 0.0
            self._frontier_cache = 0.0
            self._pcie_heap: list[tuple[float, int]] = [
                (0.0, g) for g in range(num_gpus)
            ]
            heapq.heapify(self._pcie_heap)
            for timeline in (*self.gpus, self.cpu):
                timeline._observer = self._on_compute_advance
            for g, link in enumerate(self.pcie_links):
                link._observer = self._make_pcie_observer(g)
            if self.disk is not None:
                self.disk._observer = self._on_link_advance

    # ------------------------------------------------------------------
    # frontier cache maintenance (fast mode only)
    # ------------------------------------------------------------------
    def _on_compute_advance(self, available_at: float) -> None:
        if available_at > self._compute_frontier_cache:
            self._compute_frontier_cache = available_at
        if available_at > self._frontier_cache:
            self._frontier_cache = available_at

    def _on_link_advance(self, available_at: float) -> None:
        if available_at > self._frontier_cache:
            self._frontier_cache = available_at

    def _make_pcie_observer(self, device: int):
        def observer(available_at: float) -> None:
            heapq.heappush(self._pcie_heap, (available_at, device))
            if available_at > self._frontier_cache:
                self._frontier_cache = available_at

        return observer

    # ------------------------------------------------------------------
    # device accessors
    # ------------------------------------------------------------------
    @property
    def gpu(self) -> ResourceTimeline:
        """Device 0's compute timeline (the historical single GPU)."""
        return self.gpus[0]

    @property
    def pcie(self) -> ResourceTimeline:
        """Device 0's PCIe link (the historical single link)."""
        return self.pcie_links[0]

    def gpu_timeline(self, device: int) -> ResourceTimeline:
        """Compute timeline of GPU ``device``."""
        self._check_device(device)
        return self.gpus[device]

    def pcie_timeline(self, device: int) -> ResourceTimeline:
        """Host-to-device PCIe link of GPU ``device``."""
        self._check_device(device)
        return self.pcie_links[device]

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_gpus:
            raise SimulationError(
                f"device {device} out of range for {self.num_gpus} GPUs"
            )

    def timeline(self, resource: Resource, device: int = 0) -> ResourceTimeline:
        """The ledger of one resource (GPU/PCIe resolve per ``device``)."""
        if resource == Resource.GPU:
            return self.gpu_timeline(device)
        if resource == Resource.CPU:
            return self.cpu
        if resource == Resource.DISK:
            return self.disk_timeline()
        return self.pcie_timeline(device)

    def disk_timeline(self) -> ResourceTimeline:
        """The platform-shared disk -> host link (tiered memory only)."""
        if self.disk is None:
            raise SimulationError(
                "clock models no disk tier; construct with disk=True"
            )
        return self.disk

    # ------------------------------------------------------------------
    # frontiers
    # ------------------------------------------------------------------
    @property
    def compute_frontier(self) -> float:
        """Earliest time all compute resources are free (layer barrier).

        PCIe deliberately excluded: in-flight prefetch transfers overlap
        the next layer's attention. With multiple GPUs the barrier waits
        for every device — the MoE outputs of all experts are needed
        before the next layer's attention can run.
        """
        if self.fast:
            return self._compute_frontier_cache
        return max(max(t.available_at for t in self.gpus), self.cpu.available_at)

    @property
    def frontier(self) -> float:
        """Earliest time every resource (links included) is free."""
        if self.fast:
            return self._frontier_cache
        frontier = max(
            self.compute_frontier,
            max(t.available_at for t in self.pcie_links),
        )
        if self.disk is not None:
            frontier = max(frontier, self.disk.available_at)
        return frontier

    @property
    def min_pcie_available_at(self) -> float:
        """Earliest time any PCIe link frees up (prefetch budget probe)."""
        if self.fast:
            heap = self._pcie_heap
            links = self.pcie_links
            while heap[0][0] != links[heap[0][1]]._available_at:
                heapq.heappop(heap)
            return heap[0][0]
        return min(t.available_at for t in self.pcie_links)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def utilization_summary(
        self, window_start: float, window_end: float
    ) -> dict[str, float]:
        """Busy fractions per resource over a window.

        With one GPU the keys are the historical ``gpu``/``cpu``/``pcie``
        triple. With ``num_gpus > 1`` the summary reports each device
        (``gpu0``, ``pcie0``, ...) plus ``gpu`` and ``pcie`` aggregates
        (mean across devices) so downstream consumers that average
        "the" GPU utilisation keep working. When the clock models a
        disk tier a ``disk`` entry is added (absent otherwise, keeping
        two-tier summaries schema-identical to the historical ones).
        """
        if self.num_gpus == 1:
            summary = {
                "gpu": self.gpu.utilization(window_start, window_end),
                "cpu": self.cpu.utilization(window_start, window_end),
                "pcie": self.pcie.utilization(window_start, window_end),
            }
            if self.disk is not None:
                summary["disk"] = self.disk.utilization(window_start, window_end)
            return summary
        gpu_utils = [t.utilization(window_start, window_end) for t in self.gpus]
        pcie_utils = [t.utilization(window_start, window_end) for t in self.pcie_links]
        summary = {
            "gpu": sum(gpu_utils) / len(gpu_utils),
            "cpu": self.cpu.utilization(window_start, window_end),
            "pcie": sum(pcie_utils) / len(pcie_utils),
        }
        if self.disk is not None:
            summary["disk"] = self.disk.utilization(window_start, window_end)
        for g, (gu, pu) in enumerate(zip(gpu_utils, pcie_utils)):
            summary[f"gpu{g}"] = gu
            summary[f"pcie{g}"] = pu
        return summary

    def validate(self) -> None:
        """Validate no-overlap invariants on every timeline."""
        for timeline in self.gpus:
            timeline.validate()
        self.cpu.validate()
        for timeline in self.pcie_links:
            timeline.validate()
        if self.disk is not None:
            self.disk.validate()
