"""Resource timelines: append-only busy-interval ledgers per device.

A :class:`ResourceTimeline` records every interval a resource (GPU, CPU
or the PCIe link) is busy, enforces monotonicity (no overlapping work on
a serial resource) and answers utilisation queries. It is the audit
trail of both the planner's schedule simulations and the engine's actual
execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["TimelineInterval", "ResourceTimeline"]

_TIME_TOLERANCE = 1e-12


@dataclass(frozen=True)
class TimelineInterval:
    """One busy interval on a resource."""

    start: float
    finish: float
    label: str

    @property
    def duration(self) -> float:
        return self.finish - self.start


class ResourceTimeline:
    """Serial resource with an append-only schedule.

    Intervals must be reserved in non-decreasing start order; each
    reservation returns the actual ``(start, finish)`` pair after
    queueing behind earlier work.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._intervals: list[TimelineInterval] = []
        self._available_at = 0.0

    @property
    def available_at(self) -> float:
        """Earliest time new work can start."""
        return self._available_at

    @property
    def intervals(self) -> list[TimelineInterval]:
        """All reserved intervals, in start order (copy-safe view)."""
        return list(self._intervals)

    def reserve(self, earliest_start: float, duration: float, label: str) -> tuple[float, float]:
        """Reserve ``duration`` seconds at or after ``earliest_start``.

        Returns
        -------
        tuple
            The committed ``(start, finish)`` times. Work queues behind
            any previously reserved interval.
        """
        if duration < 0:
            raise SimulationError(
                f"{self.name}: negative duration {duration} for {label!r}"
            )
        if earliest_start < -_TIME_TOLERANCE:
            raise SimulationError(
                f"{self.name}: negative start time {earliest_start} for {label!r}"
            )
        start = max(self._available_at, earliest_start)
        finish = start + duration
        if duration > 0.0:
            self._intervals.append(TimelineInterval(start, finish, label))
        self._available_at = max(self._available_at, finish)
        return start, finish

    def busy_time(self, window_start: float = 0.0, window_end: float | None = None) -> float:
        """Total busy seconds within ``[window_start, window_end]``."""
        if window_end is None:
            window_end = self._available_at
        if window_end < window_start:
            raise SimulationError(
                f"{self.name}: window end {window_end} before start {window_start}"
            )
        total = 0.0
        for interval in self._intervals:
            lo = max(interval.start, window_start)
            hi = min(interval.finish, window_end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, window_start: float = 0.0, window_end: float | None = None) -> float:
        """Busy fraction of the window (0 when the window is empty)."""
        if window_end is None:
            window_end = self._available_at
        span = window_end - window_start
        if span <= 0:
            return 0.0
        return self.busy_time(window_start, window_end) / span

    def validate(self) -> None:
        """Check the no-overlap invariant; raises on violation."""
        for prev, curr in zip(self._intervals, self._intervals[1:]):
            if curr.start < prev.finish - _TIME_TOLERANCE:
                raise SimulationError(
                    f"{self.name}: interval {curr.label!r} starts at {curr.start} "
                    f"before {prev.label!r} finishes at {prev.finish}"
                )
