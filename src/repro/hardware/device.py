"""Resource timelines: append-only busy-interval ledgers per device.

A :class:`ResourceTimeline` records every interval a resource (GPU, CPU
or the PCIe link) is busy, enforces monotonicity (no overlapping work on
a serial resource) and answers utilisation queries. It is the audit
trail of both the planner's schedule simulations and the engine's actual
execution.

Because work queues strictly behind earlier work, both the interval
start times and the finish times are non-decreasing; the windowed
accounting queries (:meth:`ResourceTimeline.busy_time`) exploit that to
bisect to the overlapping slice instead of rescanning the whole ledger.
The bisected sum adds exactly the same floats in exactly the same order
as the full linear scan (skipped intervals contribute nothing), so the
fast accounting is bit-identical; ``fast=False`` keeps the historical
full scan as a perf oracle (the engine threads
``EngineConfig.engine_fast_path`` here).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["TimelineInterval", "ResourceTimeline"]

_TIME_TOLERANCE = 1e-12


@dataclass(frozen=True)
class TimelineInterval:
    """One busy interval on a resource."""

    start: float
    finish: float
    label: str

    @property
    def duration(self) -> float:
        return self.finish - self.start


class ResourceTimeline:
    """Serial resource with an append-only schedule.

    Intervals must be reserved in non-decreasing start order; each
    reservation returns the actual ``(start, finish)`` pair after
    queueing behind earlier work.

    Parameters
    ----------
    name:
        Resource name used in labels and error messages.
    fast:
        Use the bisected windowed accounting (bit-identical to the
        linear scan; ``False`` keeps the historical full rescan as a
        perf baseline).
    """

    def __init__(self, name: str, fast: bool = True) -> None:
        self.name = name
        self.fast = fast
        self._intervals: list[TimelineInterval] = []
        # Parallel start/finish arrays (both non-decreasing by
        # construction) backing the bisected accounting queries.
        self._starts: list[float] = []
        self._finishes: list[float] = []
        self._available_at = 0.0
        #: Optional advance hook set by the owning clock: called after
        #: every reservation that moves ``available_at`` forward, so
        #: frontier caches can update without rescanning timelines.
        self._observer = None

    @property
    def available_at(self) -> float:
        """Earliest time new work can start."""
        return self._available_at

    @property
    def intervals(self) -> list[TimelineInterval]:
        """All reserved intervals, in start order (copy-safe view)."""
        return list(self._intervals)

    def reserve(self, earliest_start: float, duration: float, label: str) -> tuple[float, float]:
        """Reserve ``duration`` seconds at or after ``earliest_start``.

        Returns
        -------
        tuple
            The committed ``(start, finish)`` times. Work queues behind
            any previously reserved interval.
        """
        if duration < 0:
            raise SimulationError(
                f"{self.name}: negative duration {duration} for {label!r}"
            )
        if earliest_start < -_TIME_TOLERANCE:
            raise SimulationError(
                f"{self.name}: negative start time {earliest_start} for {label!r}"
            )
        start = max(self._available_at, earliest_start)
        finish = start + duration
        if duration > 0.0:
            self._intervals.append(TimelineInterval(start, finish, label))
            self._starts.append(start)
            self._finishes.append(finish)
        if finish > self._available_at:
            self._available_at = finish
            if self._observer is not None:
                self._observer(finish)
        return start, finish

    def busy_time(self, window_start: float = 0.0, window_end: float | None = None) -> float:
        """Total busy seconds within ``[window_start, window_end]``."""
        if window_end is None:
            window_end = self._available_at
        if window_end < window_start:
            raise SimulationError(
                f"{self.name}: window end {window_end} before start {window_start}"
            )
        total = 0.0
        if self.fast:
            # Only intervals with finish > window_start and start <
            # window_end can overlap; both arrays are non-decreasing,
            # so the overlapping intervals form one contiguous slice.
            # Summing just that slice (in order) adds the exact floats
            # the full scan would - every skipped term is zero.
            lo_idx = bisect_right(self._finishes, window_start)
            hi_idx = bisect_left(self._starts, window_end, lo_idx)
            starts, finishes = self._starts, self._finishes
            for i in range(lo_idx, hi_idx):
                lo = max(starts[i], window_start)
                hi = min(finishes[i], window_end)
                if hi > lo:
                    total += hi - lo
            return total
        for interval in self._intervals:
            lo = max(interval.start, window_start)
            hi = min(interval.finish, window_end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, window_start: float = 0.0, window_end: float | None = None) -> float:
        """Busy fraction of the window (0 when the window is empty)."""
        if window_end is None:
            window_end = self._available_at
        span = window_end - window_start
        if span <= 0:
            return 0.0
        return self.busy_time(window_start, window_end) / span

    def validate(self) -> None:
        """Check the no-overlap invariant; raises on violation."""
        for prev, curr in zip(self._intervals, self._intervals[1:]):
            if curr.start < prev.finish - _TIME_TOLERANCE:
                raise SimulationError(
                    f"{self.name}: interval {curr.label!r} starts at {curr.start} "
                    f"before {prev.label!r} finishes at {prev.finish}"
                )
