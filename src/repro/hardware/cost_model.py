"""Roofline cost models for expert compute and transfer.

The scheduler never touches wall-clock time: every duration comes from a
:class:`CostModel`. Three implementations are provided:

- :class:`AnalyticCostModel` — ground truth derived from a
  :class:`HardwareProfile` (peak FLOPs, memory and PCIe bandwidths,
  per-task overheads) via a max(bandwidth, compute) roofline;
- :class:`FittedCostModel` — per-shape linear fits produced by the
  warmup phase (:mod:`repro.hardware.warmup`), mirroring how the real
  HybriMoE system estimates durations from profiling rather than specs;
- :class:`NoisyCostModel` — wraps another model with multiplicative
  log-normal noise for robustness experiments (planner estimates then
  systematically disagree with executed durations).

Durations are in **seconds**; shapes are paper-scale
:class:`~repro.models.config.ExpertShape` objects, so byte counts match
the real models (4-bit Marlin quantisation by default).

Profiles may additionally describe a **disk tier** (``disk_bw`` /
``disk_latency_s``): :meth:`CostModel.disk_transfer_time` is the cost
of staging one expert's weights disk -> host DRAM, the first hop of the
disk -> CPU -> GPU transfer chain a tiered-memory engine pays for
spilled experts. Profiles without ``disk_bw`` keep the paper's two-tier
assumption and raise on disk queries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.models.config import ExpertShape
from repro.rng import derive_rng

__all__ = [
    "HardwareProfile",
    "CostModel",
    "AnalyticCostModel",
    "FittedCostModel",
    "NoisyCostModel",
]


@dataclass(frozen=True)
class HardwareProfile:
    """Peak-performance description of a CPU-GPU-PCIe platform.

    All rates are effective (achievable) rather than datasheet peaks.

    Attributes
    ----------
    gpu_flops:
        Effective GPU FLOP/s for quantised GEMM.
    gpu_mem_bw:
        Effective GPU memory bandwidth in bytes/s (weight streaming).
    gpu_overhead_s:
        Fixed per-kernel launch/dispatch overhead in seconds.
    cpu_flops:
        Effective CPU FLOP/s across the allotted cores.
    cpu_mem_bw:
        Effective CPU memory bandwidth in bytes/s.
    cpu_task_overhead_s:
        Fixed per-task dispatch overhead on the CPU.
    cpu_warmup_s:
        Extra latency of the *first* CPU expert task in a layer (cold
        caches — paper Fig. 3e).
    pcie_bw:
        Effective host-to-device bandwidth in bytes/s.
    pcie_latency_s:
        Fixed per-transfer setup latency.
    bits_per_param:
        Stored bits per weight parameter (4-bit Marlin plus scales
        ~= 4.5 bits).
    disk_bw:
        Effective disk -> host-DRAM read bandwidth in bytes/s (NVMe or
        SATA SSD), or ``None`` when the platform models no disk tier
        (the paper's assumption: every expert is DRAM-resident).
    disk_latency_s:
        Fixed per-read setup latency of the disk tier.
    """

    name: str
    gpu_flops: float
    gpu_mem_bw: float
    gpu_overhead_s: float
    cpu_flops: float
    cpu_mem_bw: float
    cpu_task_overhead_s: float
    cpu_warmup_s: float
    pcie_bw: float
    pcie_latency_s: float
    bits_per_param: float = 4.5
    disk_bw: float | None = None
    disk_latency_s: float = 100e-6

    def __post_init__(self) -> None:
        positive_fields = [
            ("gpu_flops", self.gpu_flops),
            ("gpu_mem_bw", self.gpu_mem_bw),
            ("cpu_flops", self.cpu_flops),
            ("cpu_mem_bw", self.cpu_mem_bw),
            ("pcie_bw", self.pcie_bw),
            ("bits_per_param", self.bits_per_param),
        ]
        if self.disk_bw is not None:
            positive_fields.append(("disk_bw", self.disk_bw))
        for field_name, value in positive_fields:
            if value <= 0:
                raise ConfigError(f"{field_name} must be positive, got {value}")
        non_negative_fields = [
            ("gpu_overhead_s", self.gpu_overhead_s),
            ("cpu_task_overhead_s", self.cpu_task_overhead_s),
            ("cpu_warmup_s", self.cpu_warmup_s),
            ("pcie_latency_s", self.pcie_latency_s),
            ("disk_latency_s", self.disk_latency_s),
        ]
        for field_name, value in non_negative_fields:
            if value < 0:
                raise ConfigError(f"{field_name} must be non-negative, got {value}")


class CostModel(ABC):
    """Duration oracle for expert compute, transfers and attention."""

    @abstractmethod
    def expert_bytes(self, shape: ExpertShape) -> float:
        """Stored size of one expert's weights in bytes."""

    @abstractmethod
    def gpu_expert_time(self, shape: ExpertShape, tokens: int) -> float:
        """Seconds for the GPU to run ``tokens`` through one expert."""

    @abstractmethod
    def cpu_expert_time(
        self, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        """Seconds for the CPU to run ``tokens`` through one expert.

        ``first_task`` adds the cold-cache warmup penalty observed for
        the first expert computed in a layer (paper Fig. 3e).
        """

    @abstractmethod
    def transfer_time(self, shape: ExpertShape) -> float:
        """Seconds to move one expert's weights host -> GPU over PCIe."""

    def disk_transfer_time(self, shape: ExpertShape) -> float:
        """Seconds to read one expert's weights disk -> host DRAM.

        Only meaningful on platforms modelling a disk tier; the default
        raises so two-tier models fail loudly rather than returning a
        fictitious duration.
        """
        raise ConfigError(
            f"{type(self).__name__} models no disk tier; use a hardware "
            "profile with disk_bw set"
        )

    @abstractmethod
    def attention_time(self, d_model: int, tokens: int, device: str = "gpu") -> float:
        """Seconds for the non-MoE part of a layer (attention + norms).

        This bounds the prefetch window: transfers issued during layer
        ``l``'s attention overlap with this duration. ``device`` is
        ``"gpu"`` normally; llama.cpp-style static mapping runs whole
        layers (attention included) on the CPU.
        """

    # Convenience used across schedulers ------------------------------------
    def device_expert_time(
        self, device: str, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        """Dispatch on a device name (``"gpu"`` or ``"cpu"``)."""
        if device == "gpu":
            return self.gpu_expert_time(shape, tokens)
        if device == "cpu":
            return self.cpu_expert_time(shape, tokens, first_task=first_task)
        raise ConfigError(f"unknown device {device!r}")


def _validate_workload(shape: ExpertShape, tokens: int) -> None:
    if tokens < 0:
        raise ConfigError(f"tokens must be non-negative, got {tokens}")
    if shape.d_model <= 0 or shape.d_ff <= 0:
        raise ConfigError(f"invalid expert shape {shape}")


class AnalyticCostModel(CostModel):
    """Roofline model driven by a :class:`HardwareProfile`.

    Compute time is ``overhead + max(bytes/bandwidth, flops/rate)``:
    at small token counts the expert is weight-bandwidth bound (GPU time
    flat in load, Fig. 3f); at large counts it becomes FLOP bound. The
    CPU's much lower FLOP rate makes it FLOP bound almost immediately,
    which is why its time grows linearly with workload.
    """

    def __init__(self, profile: HardwareProfile) -> None:
        self.profile = profile

    def expert_bytes(self, shape: ExpertShape) -> float:
        return shape.param_count * self.profile.bits_per_param / 8.0

    def gpu_expert_time(self, shape: ExpertShape, tokens: int) -> float:
        _validate_workload(shape, tokens)
        if tokens == 0:
            return 0.0
        weight_term = self.expert_bytes(shape) / self.profile.gpu_mem_bw
        compute_term = shape.flops_per_token() * tokens / self.profile.gpu_flops
        return self.profile.gpu_overhead_s + max(weight_term, compute_term)

    def cpu_expert_time(
        self, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        _validate_workload(shape, tokens)
        if tokens == 0:
            return 0.0
        weight_term = self.expert_bytes(shape) / self.profile.cpu_mem_bw
        compute_term = shape.flops_per_token() * tokens / self.profile.cpu_flops
        warmup = self.profile.cpu_warmup_s if first_task else 0.0
        return self.profile.cpu_task_overhead_s + warmup + max(weight_term, compute_term)

    def transfer_time(self, shape: ExpertShape) -> float:
        return self.profile.pcie_latency_s + self.expert_bytes(shape) / self.profile.pcie_bw

    def disk_transfer_time(self, shape: ExpertShape) -> float:
        if self.profile.disk_bw is None:
            raise ConfigError(
                f"hardware profile {self.profile.name!r} models no disk tier "
                "(disk_bw is None)"
            )
        return self.profile.disk_latency_s + self.expert_bytes(shape) / self.profile.disk_bw

    def attention_time(self, d_model: int, tokens: int, device: str = "gpu") -> float:
        if d_model <= 0:
            raise ConfigError(f"d_model must be positive, got {d_model}")
        if tokens < 0:
            raise ConfigError(f"tokens must be non-negative, got {tokens}")
        if device not in ("gpu", "cpu"):
            raise ConfigError(f"attention device must be 'gpu' or 'cpu', got {device!r}")
        if tokens == 0:
            return 0.0
        # Attention weights ~ 4 d^2 params (Q, K, V, O projections).
        attn_bytes = 4 * d_model * d_model * self.profile.bits_per_param / 8.0
        attn_flops = 8.0 * d_model * d_model * tokens
        if device == "gpu":
            weight_term = attn_bytes / self.profile.gpu_mem_bw
            compute_term = attn_flops / self.profile.gpu_flops
            return self.profile.gpu_overhead_s + max(weight_term, compute_term)
        weight_term = attn_bytes / self.profile.cpu_mem_bw
        compute_term = attn_flops / self.profile.cpu_flops
        return self.profile.cpu_task_overhead_s + max(weight_term, compute_term)


@dataclass(frozen=True)
class LinearFit:
    """Affine duration model ``base + per_token * tokens``."""

    base: float
    per_token: float

    def __call__(self, tokens: int) -> float:
        if tokens == 0:
            return 0.0
        return self.base + self.per_token * tokens


class FittedCostModel(CostModel):
    """Per-shape linear fits, as produced by the warmup calibration.

    The real HybriMoE system learns durations from a warmup phase rather
    than from hardware datasheets; this class plays that role. Fits are
    keyed by expert shape, so models with heterogeneous expert sizes
    (shared vs routed) each get their own calibration.
    """

    def __init__(
        self,
        gpu_fits: dict[ExpertShape, LinearFit],
        cpu_fits: dict[ExpertShape, LinearFit],
        cpu_warmup_s: float,
        transfer_times: dict[ExpertShape, float],
        attention_fits: dict[tuple[int, str], LinearFit],
        bytes_per_param: float,
        disk_transfer_times: dict[ExpertShape, float] | None = None,
    ) -> None:
        self._gpu_fits = dict(gpu_fits)
        self._cpu_fits = dict(cpu_fits)
        self._cpu_warmup_s = cpu_warmup_s
        self._transfer_times = dict(transfer_times)
        self._attention_fits = dict(attention_fits)
        self._bytes_per_param = bytes_per_param
        self._disk_transfer_times = dict(disk_transfer_times or {})

    def _lookup(self, table: dict, key, kind: str):
        try:
            return table[key]
        except KeyError:
            raise ConfigError(
                f"no {kind} calibration for {key}; run the warmup phase with this shape"
            ) from None

    def expert_bytes(self, shape: ExpertShape) -> float:
        return shape.param_count * self._bytes_per_param

    def gpu_expert_time(self, shape: ExpertShape, tokens: int) -> float:
        _validate_workload(shape, tokens)
        return self._lookup(self._gpu_fits, shape, "GPU")(tokens)

    def cpu_expert_time(
        self, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        _validate_workload(shape, tokens)
        base = self._lookup(self._cpu_fits, shape, "CPU")(tokens)
        if tokens > 0 and first_task:
            base += self._cpu_warmup_s
        return base

    def transfer_time(self, shape: ExpertShape) -> float:
        return self._lookup(self._transfer_times, shape, "transfer")

    def disk_transfer_time(self, shape: ExpertShape) -> float:
        return self._lookup(self._disk_transfer_times, shape, "disk transfer")

    def attention_time(self, d_model: int, tokens: int, device: str = "gpu") -> float:
        if tokens < 0:
            raise ConfigError(f"tokens must be non-negative, got {tokens}")
        return self._lookup(self._attention_fits, (d_model, device), "attention")(tokens)


class NoisyCostModel(CostModel):
    """Multiplicative log-normal noise around a base model.

    Used for robustness experiments: the planner holds the noiseless
    estimates while execution draws noisy durations, so schedules are
    evaluated under estimation error. Draws are deterministic given the
    seed and a call counter.
    """

    def __init__(self, base: CostModel, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ConfigError(f"noise sigma must be non-negative, got {sigma}")
        self._base = base
        self._sigma = sigma
        self._rng = derive_rng(seed, "cost-noise")

    def _jitter(self, value: float) -> float:
        if self._sigma == 0.0 or value == 0.0:
            return value
        return value * float(self._rng.lognormal(mean=0.0, sigma=self._sigma))

    def expert_bytes(self, shape: ExpertShape) -> float:
        return self._base.expert_bytes(shape)

    def gpu_expert_time(self, shape: ExpertShape, tokens: int) -> float:
        return self._jitter(self._base.gpu_expert_time(shape, tokens))

    def cpu_expert_time(
        self, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        return self._jitter(self._base.cpu_expert_time(shape, tokens, first_task))

    def transfer_time(self, shape: ExpertShape) -> float:
        return self._jitter(self._base.transfer_time(shape))

    def disk_transfer_time(self, shape: ExpertShape) -> float:
        return self._jitter(self._base.disk_transfer_time(shape))

    def attention_time(self, d_model: int, tokens: int, device: str = "gpu") -> float:
        return self._jitter(self._base.attention_time(d_model, tokens, device))
