"""Sub-replica hardware fault injection: fail-slow resource degradation.

PR 7's :class:`~repro.fleet.faults.FaultSchedule` models *fail-stop*
faults (a replica crashes or is blacked out whole). Real deployments
degrade long before that: a PCIe link throttles, the disk tier stalls,
one GPU straggles. This module injects such **sub-replica** faults as
windows during which a specific resource of a specific replica runs
degraded, while the replica keeps serving.

The mechanism is a mutable :class:`DegradedCostModel` wrapper around
both of an engine's cost models (actual *and* estimated). Every
duration the clock charges and every duration the planner reasons
about flows through the same wrapper, so the hybrid scheduler
**re-costs against the degraded link** — under a straggler GPU the
eq. (2) search naturally shifts expert work to the CPU, exactly the
adaptivity the paper's cost model (§IV) enables. The serving session
applies the schedule's state at each **step boundary** (the same
observation discipline replica crashes use), and fault checking never
mutates schedule state — a schedule whose windows never cover the run
leaves every duration bit-identical to running with no schedule at all
(test-enforced like ``FaultSchedule``).

Three fault kinds:

- ``"link_degrade"`` — the PCIe link runs at ``severity`` (in (0, 1))
  of its effective bandwidth: every host->GPU transfer duration scales
  by ``1 / severity`` for the window.
- ``"disk_stall"`` — the disk tier stalls: a read issued at a step
  boundary inside the window is blocked until the window ends, so it
  pays the *remaining* stall on top of its normal duration (a
  deliberately pessimistic model: the stall is frozen per step
  boundary, matching how the clock charges whole steps).
- ``"gpu_straggler"`` — GPU compute (expert GEMMs and GPU-side
  attention) runs ``severity`` (> 1) times slower. CPU compute is
  untouched — which is what lets the scheduler route around the
  straggler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigError
from repro.hardware.cost_model import CostModel
from repro.models.config import ExpertShape

__all__ = [
    "HARDWARE_FAULT_KINDS",
    "HardwareFault",
    "DegradationState",
    "NEUTRAL_STATE",
    "DegradationEvent",
    "HardwareFaultSchedule",
    "DegradedCostModel",
]

HARDWARE_FAULT_KINDS = ("link_degrade", "disk_stall", "gpu_straggler")


@dataclass(frozen=True)
class HardwareFault:
    """One scheduled resource-degradation window on one replica.

    Parameters
    ----------
    kind:
        One of :data:`HARDWARE_FAULT_KINDS`.
    at_time:
        Window start, in the same trace-relative seconds as request
        arrivals (and :class:`~repro.fleet.faults.ReplicaFault`).
    duration:
        Window length in seconds (all hardware faults are windows —
        permanent resource loss is a crash's job).
    severity:
        - ``link_degrade``: remaining PCIe bandwidth fraction in
          (0, 1) — transfers slow down by ``1 / severity``;
        - ``gpu_straggler``: compute slowdown multiplier > 1;
        - ``disk_stall``: unused (must stay at the default 1.0) — the
          stall's strength is its duration.
    replica:
        Target replica id (0 for a bare serving engine).
    """

    kind: str
    at_time: float
    duration: float
    severity: float = 1.0
    replica: int = 0

    def __post_init__(self) -> None:
        if self.kind not in HARDWARE_FAULT_KINDS:
            known = ", ".join(HARDWARE_FAULT_KINDS)
            raise ConfigError(
                f"unknown hardware fault kind {self.kind!r} (known: {known})"
            )
        if self.replica < 0:
            raise ConfigError(
                f"fault replica must be non-negative, got {self.replica}"
            )
        if self.at_time < 0:
            raise ConfigError(
                f"fault at_time must be non-negative, got {self.at_time}"
            )
        if self.duration <= 0:
            raise ConfigError(
                f"hardware fault needs a positive duration, got {self.duration}"
            )
        if self.kind == "link_degrade" and not 0.0 < self.severity < 1.0:
            raise ConfigError(
                f"link_degrade severity is the remaining bandwidth fraction "
                f"and must be in (0, 1), got {self.severity}"
            )
        if self.kind == "gpu_straggler" and self.severity <= 1.0:
            raise ConfigError(
                f"gpu_straggler severity is a slowdown multiplier and must "
                f"be > 1, got {self.severity}"
            )
        if self.kind == "disk_stall" and self.severity != 1.0:
            raise ConfigError(
                f"disk_stall ignores severity (its strength is its duration); "
                f"leave it at 1.0, got {self.severity}"
            )

    @property
    def end_time(self) -> float:
        """First instant past the window."""
        return self.at_time + self.duration

    def active(self, time: float) -> bool:
        """Whether the window covers the instant ``time``."""
        return self.at_time <= time < self.end_time


@dataclass(frozen=True)
class DegradationState:
    """The combined resource degradation in force at one instant.

    ``gpu_slowdown`` and ``pcie_slowdown`` are multipliers (>= 1)
    applied to GPU-side compute and PCIe transfer durations;
    ``disk_stall_s`` is the extra blocking charged to each disk read
    issued at this step boundary (the remaining stall window). The
    neutral state is all-ones/zero — applying it changes nothing,
    bit-for-bit.
    """

    gpu_slowdown: float = 1.0
    pcie_slowdown: float = 1.0
    disk_stall_s: float = 0.0

    @property
    def is_neutral(self) -> bool:
        """Whether this state leaves every duration untouched."""
        return (
            self.gpu_slowdown == 1.0
            and self.pcie_slowdown == 1.0
            and self.disk_stall_s == 0.0
        )


NEUTRAL_STATE = DegradationState()


@dataclass(frozen=True)
class DegradationEvent:
    """One entry of a serving report's degradation log.

    Appended whenever the set of active hardware faults on a replica
    changes at a step boundary — window entries record the degraded
    state then in force, window exits record the recovery (a neutral
    state), so benchmarks can show goodput dipping *and recovering*.
    """

    time: float
    state: DegradationState
    replica: int = 0


@dataclass(frozen=True)
class HardwareFaultSchedule:
    """An immutable collection of scheduled hardware faults.

    Validation rejects two faults of the same kind on the same replica
    whose windows overlap (including exact duplicates) — the composed
    severity of overlapping same-kind windows would be ambiguous.
    Different kinds compose freely: slowdown multipliers multiply and
    disk stalls take the longest remaining window.
    """

    faults: tuple[HardwareFault, ...] = ()

    def __init__(self, faults: Iterable[HardwareFault] = ()) -> None:
        ordered = tuple(
            sorted(faults, key=lambda f: (f.at_time, f.replica, f.kind))
        )
        last_seen: dict[tuple[int, str], HardwareFault] = {}
        for fault in ordered:
            key = (fault.replica, fault.kind)
            previous = last_seen.get(key)
            if previous is not None and fault.at_time < previous.end_time:
                raise ConfigError(
                    f"overlapping {fault.kind!r} windows on replica "
                    f"{fault.replica}: [{previous.at_time}, {previous.end_time}) "
                    f"and [{fault.at_time}, {fault.end_time})"
                )
            last_seen[key] = fault
        object.__setattr__(self, "faults", ordered)

    def __iter__(self) -> Iterator[HardwareFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def for_replica(self, replica: int) -> "HardwareFaultSchedule":
        """The sub-schedule targeting one replica (ids preserved)."""
        return HardwareFaultSchedule(
            f for f in self.faults if f.replica == replica
        )

    def active_faults(
        self, replica: int, time: float
    ) -> tuple[HardwareFault, ...]:
        """Faults whose windows cover ``time`` on ``replica``."""
        return tuple(
            f for f in self.faults if f.replica == replica and f.active(time)
        )

    def degraded(self, replica: int, time: float) -> bool:
        """Whether any fault window covers ``time`` on ``replica``.

        The fleet router uses this to steer new work away from a
        degraded replica while alternatives exist (a soft blackout:
        degraded replicas are readmitted when nothing else is
        routable — degraded capacity beats dropping the request).
        """
        return any(
            f.replica == replica and f.active(time) for f in self.faults
        )

    def state_at(self, time: float, replica: int = 0) -> DegradationState:
        """The combined degradation on ``replica`` at instant ``time``.

        Slowdown multipliers of concurrently-active faults multiply
        (only *different* kinds can overlap); the disk stall charges
        the longest remaining window. Outside every window this is the
        neutral state — applying it is a bit-exact no-op.
        """
        gpu = 1.0
        pcie = 1.0
        stall = 0.0
        for fault in self.faults:
            if fault.replica != replica or not fault.active(time):
                continue
            if fault.kind == "gpu_straggler":
                gpu *= fault.severity
            elif fault.kind == "link_degrade":
                pcie *= 1.0 / fault.severity
            else:  # disk_stall
                stall = max(stall, fault.end_time - time)
        if gpu == 1.0 and pcie == 1.0 and stall == 0.0:
            return NEUTRAL_STATE
        return DegradationState(
            gpu_slowdown=gpu, pcie_slowdown=pcie, disk_stall_s=stall
        )


class DegradedCostModel(CostModel):
    """Mutable degradation wrapper around a base cost model.

    An engine wraps *both* its cost models (actual and estimated) in
    one of these at construction, so executed durations and every
    planning decision — hybrid scheduler search, prefetch budgeting,
    quick screens — see the same degraded platform the moment
    :meth:`set_state` applies a non-neutral state. In the neutral
    state every method returns the base model's float **unchanged**
    (no arithmetic applied), which is what makes an unfired
    :class:`HardwareFaultSchedule` bit-identical to no schedule.

    The slowdown applies to the whole duration including fixed
    overheads — an effective-bandwidth/effective-throughput model,
    consistent with :class:`~repro.hardware.cost_model.HardwareProfile`
    describing achievable rather than datasheet rates.
    """

    def __init__(self, base: CostModel) -> None:
        self._base = base
        self._state = NEUTRAL_STATE

    @property
    def base(self) -> CostModel:
        """The wrapped (fault-free) cost model."""
        return self._base

    @property
    def state(self) -> DegradationState:
        """The degradation currently in force."""
        return self._state

    def set_state(self, state: DegradationState) -> bool:
        """Swap the degradation in force; True when anything changed.

        Callers must invalidate every cache of this model's outputs
        (plan memos, duration tables, scalar estimates) when this
        returns True — see ``InferenceEngine.set_degradation``, which
        does exactly that.
        """
        if state == self._state:
            return False
        self._state = state
        return True

    # ------------------------------------------------------------------
    def expert_bytes(self, shape: ExpertShape) -> float:
        return self._base.expert_bytes(shape)

    def gpu_expert_time(self, shape: ExpertShape, tokens: int) -> float:
        duration = self._base.gpu_expert_time(shape, tokens)
        slowdown = self._state.gpu_slowdown
        return duration if slowdown == 1.0 else duration * slowdown

    def cpu_expert_time(
        self, shape: ExpertShape, tokens: int, first_task: bool = False
    ) -> float:
        return self._base.cpu_expert_time(shape, tokens, first_task=first_task)

    def transfer_time(self, shape: ExpertShape) -> float:
        duration = self._base.transfer_time(shape)
        slowdown = self._state.pcie_slowdown
        return duration if slowdown == 1.0 else duration * slowdown

    def disk_transfer_time(self, shape: ExpertShape) -> float:
        duration = self._base.disk_transfer_time(shape)
        stall = self._state.disk_stall_s
        return duration if stall == 0.0 else duration + stall

    def attention_time(
        self, d_model: int, tokens: int, device: str = "gpu"
    ) -> float:
        duration = self._base.attention_time(d_model, tokens, device)
        slowdown = self._state.gpu_slowdown
        if device != "gpu" or slowdown == 1.0:
            return duration
        return duration * slowdown
