"""Hardware profiles, including the paper's evaluation testbed.

The ``paper_testbed`` profile models the platform of §VI-A: an NVIDIA
RTX A6000 paired with an Intel Xeon Gold 5220R restricted to 10 cores,
connected by PCIe. Rates are *effective* values for 4-bit quantised
kernels, chosen so the per-expert times land in the ranges the paper
reports in Fig. 3(e)/(f); absolute wall-clock fidelity is not required
for the reproduction (we compare schedulers on identical hardware), but
the *ratios* between CPU compute, GPU compute and PCIe transfer are what
drive every scheduling decision, so they are matched with care:

- transferring a large expert costs several times a single-token CPU
  computation of the same expert (so decode favours CPU compute — the
  Fiddler/kTransformers premise);
- at prefill batch sizes the GPU is one to two orders of magnitude
  faster per expert than the CPU (so prefill favours transfers);
- small DeepSeek experts transfer quickly relative to their CPU time,
  moving the crossover point — which is exactly why the paper evaluates
  models with heterogeneous expert sizes.

Every preset also carries a **disk tier** (``disk_bw``): an NVMe-class
drive on the paper's rig, a SATA-class drive on ``disk-slow``. The disk
only matters when the engine is configured with a capacity-limited CPU
DRAM tier (``EngineConfig.cpu_cache_capacity``); the default unbounded
DRAM tier never touches it, preserving the paper's two-tier behaviour.
The ordering that drives tiered scheduling is ``disk_bw < pcie_bw <<
cpu_mem_bw < gpu_mem_bw`` — fetching a spilled expert from disk costs
several PCIe transfers, so keeping hot experts DRAM-resident matters
more than keeping them GPU-resident.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hardware.cost_model import HardwareProfile

__all__ = [
    "paper_testbed",
    "cpu_weak_testbed",
    "pcie_fast_testbed",
    "disk_slow_testbed",
    "edge_testbed",
    "HARDWARE_PRESETS",
    "get_hardware_preset",
]


def paper_testbed() -> HardwareProfile:
    """RTX A6000 + 10-core Xeon Gold 5220R over PCIe 3.0 x16 (the paper's rig)."""
    return HardwareProfile(
        name="a6000-xeon10",
        gpu_flops=25e12,          # effective 4-bit GEMM throughput
        gpu_mem_bw=450e9,         # effective of 768 GB/s peak
        gpu_overhead_s=30e-6,
        cpu_flops=180e9,          # 10 cores, AVX-512, quantised GEMM
        cpu_mem_bw=60e9,          # shared DDR4 bandwidth for 10 cores
        cpu_task_overhead_s=15e-6,
        cpu_warmup_s=120e-6,      # cold-cache first task (Fig. 3e)
        pcie_bw=20e9,             # PCIe 3.0 x16 effective
        pcie_latency_s=40e-6,
        bits_per_param=4.5,       # Marlin 4-bit + scales
        disk_bw=3.2e9,            # NVMe PCIe 3.0 x4 effective read
        disk_latency_s=80e-6,
    )


def cpu_weak_testbed() -> HardwareProfile:
    """Variant with half the CPU resources (scalability study)."""
    base = paper_testbed()
    return HardwareProfile(
        name="a6000-xeon5",
        gpu_flops=base.gpu_flops,
        gpu_mem_bw=base.gpu_mem_bw,
        gpu_overhead_s=base.gpu_overhead_s,
        cpu_flops=base.cpu_flops / 2,
        cpu_mem_bw=base.cpu_mem_bw / 2,
        cpu_task_overhead_s=base.cpu_task_overhead_s,
        cpu_warmup_s=base.cpu_warmup_s,
        pcie_bw=base.pcie_bw,
        pcie_latency_s=base.pcie_latency_s,
        bits_per_param=base.bits_per_param,
        disk_bw=base.disk_bw,
        disk_latency_s=base.disk_latency_s,
    )


def pcie_fast_testbed() -> HardwareProfile:
    """Variant with PCIe 4.0-class bandwidth (transfer-rich regime)."""
    base = paper_testbed()
    return HardwareProfile(
        name="a6000-pcie4",
        gpu_flops=base.gpu_flops,
        gpu_mem_bw=base.gpu_mem_bw,
        gpu_overhead_s=base.gpu_overhead_s,
        cpu_flops=base.cpu_flops,
        cpu_mem_bw=base.cpu_mem_bw,
        cpu_task_overhead_s=base.cpu_task_overhead_s,
        cpu_warmup_s=base.cpu_warmup_s,
        pcie_bw=2 * base.pcie_bw,
        pcie_latency_s=base.pcie_latency_s / 2,
        bits_per_param=base.bits_per_param,
        disk_bw=base.disk_bw,
        disk_latency_s=base.disk_latency_s,
    )


def disk_slow_testbed() -> HardwareProfile:
    """Variant with a SATA-SSD-class disk tier (spill-hostile regime).

    Used by the tiered-memory study: with disk reads ~6x slower than
    NVMe, DRAM-tier eviction quality dominates end-to-end latency once
    the model outgrows host RAM.
    """
    base = paper_testbed()
    return HardwareProfile(
        name="a6000-sata",
        gpu_flops=base.gpu_flops,
        gpu_mem_bw=base.gpu_mem_bw,
        gpu_overhead_s=base.gpu_overhead_s,
        cpu_flops=base.cpu_flops,
        cpu_mem_bw=base.cpu_mem_bw,
        cpu_task_overhead_s=base.cpu_task_overhead_s,
        cpu_warmup_s=base.cpu_warmup_s,
        pcie_bw=base.pcie_bw,
        pcie_latency_s=base.pcie_latency_s,
        bits_per_param=base.bits_per_param,
        disk_bw=0.5e9,            # SATA 3 effective read
        disk_latency_s=150e-6,
    )


def edge_testbed() -> HardwareProfile:
    """An edge-class SoC: integrated GPU, few cores, shared LPDDR, UFS.

    Models a Jetson-Orin-class embedded platform (the regime of the
    GPU-NDP edge-scheduling work in PAPERS.md): roughly an order of
    magnitude less GPU compute than the paper's A6000, a 4-core-class
    CPU budget, *shared* LPDDR5 behind both (so the effective
    GPU-memory and CPU-memory bandwidths sit far closer together than
    on a discrete rig), a narrow host-to-accelerator path, and a
    UFS-class flash tier. Every scheduling ratio shifts: transfers are
    relatively cheaper against the slow GPU (weakening the
    keep-it-resident bias), the CPU fallback is weaker, and spilling
    past DRAM is punishing — which is exactly why "does the win hold
    on edge hardware?" needs its own scenario axis rather than a
    rescaled paper profile.
    """
    return HardwareProfile(
        name="orin-edge",
        gpu_flops=2.5e12,         # Ampere iGPU, 4-bit effective
        gpu_mem_bw=80e9,          # shared LPDDR5 slice
        gpu_overhead_s=60e-6,
        cpu_flops=40e9,           # 4 efficiency-class cores
        cpu_mem_bw=25e9,          # same LPDDR5, CPU slice
        cpu_task_overhead_s=25e-6,
        cpu_warmup_s=200e-6,
        pcie_bw=8e9,              # iGPU copy-engine effective
        pcie_latency_s=60e-6,
        bits_per_param=4.5,
        disk_bw=1.2e9,            # UFS 3.1-class sequential read
        disk_latency_s=200e-6,
    )


HARDWARE_PRESETS = {
    "paper": paper_testbed,
    "cpu-weak": cpu_weak_testbed,
    "pcie-fast": pcie_fast_testbed,
    "disk-slow": disk_slow_testbed,
    "edge": edge_testbed,
}


def get_hardware_preset(name: str) -> HardwareProfile:
    """Look up a hardware profile by preset name."""
    try:
        return HARDWARE_PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(HARDWARE_PRESETS))
        raise ConfigError(f"unknown hardware preset {name!r} (known: {known})") from None
