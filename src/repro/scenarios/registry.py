"""The scenario registry: named, discoverable scenario specs.

Scenarios register once (import time for the built-ins, decorator or
direct call for user scenarios) and are looked up by name everywhere a
scenario axis appears — ``cli sweep --scenarios``, ``cli scenarios
list``, :func:`~repro.scenarios.sweep.run_sweep`. Duplicate names are
rejected so two modules cannot silently shadow each other's scenarios.

Usage::

    @register_scenario
    def my_scenario() -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", workload=..., fleet=...)

or, with a spec already in hand::

    register_scenario(spec)
"""

from __future__ import annotations

from typing import Callable, overload

from repro.errors import ConfigError
from repro.scenarios.scenario import ScenarioSpec

__all__ = [
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
]

_REGISTRY: dict[str, ScenarioSpec] = {}


def _register(spec: ScenarioSpec) -> ScenarioSpec:
    if not isinstance(spec, ScenarioSpec):
        raise ConfigError(
            f"register_scenario needs a ScenarioSpec (or a zero-arg factory "
            f"returning one), got {type(spec).__name__}"
        )
    if spec.name in _REGISTRY:
        raise ConfigError(
            f"scenario {spec.name!r} is already registered; scenario names "
            f"must be unique"
        )
    _REGISTRY[spec.name] = spec
    return spec


@overload
def register_scenario(target: ScenarioSpec) -> ScenarioSpec: ...
@overload
def register_scenario(
    target: Callable[[], ScenarioSpec],
) -> Callable[[], ScenarioSpec]: ...


def register_scenario(target):
    """Register a scenario spec under its ``name`` (duplicates rejected).

    Accepts either a :class:`ScenarioSpec` directly or — as a decorator
    — a zero-argument factory returning one. The factory form is
    evaluated immediately (specs are frozen data; there is nothing to
    defer) and the factory is returned unchanged so it stays callable
    and documentable.
    """
    if isinstance(target, ScenarioSpec):
        return _register(target)
    if callable(target):
        _register(target())
        return target
    raise ConfigError(
        f"register_scenario needs a ScenarioSpec or a zero-arg factory, "
        f"got {type(target).__name__}"
    )


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (primarily for tests)."""
    if name not in _REGISTRY:
        known = ", ".join(available_scenarios())
        raise ConfigError(f"unknown scenario {name!r} (known: {known})")
    del _REGISTRY[name]


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_scenarios())
        raise ConfigError(f"unknown scenario {name!r} (known: {known})") from None


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)
