"""The parallel sweep runner: scenarios x strategies x hardware x seeds.

``run_sweep`` expands a scenario list against optional strategy /
hardware / seed override axes into a grid of **cells**, runs each cell
in a worker process (``multiprocessing``; serial when ``processes=1``),
and writes one JSON file per cell plus a pooled, deterministic
``sweep.json`` merged report.

Resumability is the design center:

- every cell file embeds the exact :class:`ScenarioSpec` dict it was
  run from; a re-run **skips** any cell whose file already matches its
  spec (corrupted, stale-spec or foreign files are re-run, never
  trusted);
- a cell's payload is a pure function of its spec — no timestamps, no
  host names, NaN normalised to ``null`` — so a sweep killed after N
  cells and resumed produces a merged report **byte-identical** to an
  uninterrupted run (test-enforced);
- the merged report is rebuilt by re-reading the cell files (never
  from in-memory results), so the bytes on disk are the single source
  of truth.

A single-cell sweep is bit-identical to calling the factories by hand:
the worker does nothing but ``spec.run(seed)`` and records the report's
summary rows.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.scenarios.registry import get_scenario
from repro.scenarios.scenario import ScenarioSpec

__all__ = ["SWEEP_SCHEMA_VERSION", "SweepReport", "run_sweep", "sweep_cells"]

#: Bump when the cell / merged payload layout changes; resuming over
#: cells of another schema re-runs them.
SWEEP_SCHEMA_VERSION = 2

_CELL_DIR = "cells"
_MERGED_NAME = "sweep.json"


def _jsonify(value: Any) -> Any:
    """Normalise a result value for deterministic JSON output.

    numpy scalars become Python scalars, tuples become lists, and
    non-finite floats become ``null`` — ``float("nan")`` would
    serialise as bare ``NaN``, which is not valid JSON and would make
    the merged report unreadable to anything but Python.
    """
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def _dumps(payload: dict) -> str:
    """The one JSON encoding used for every sweep artifact."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so a killed run never leaves a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
def _cell_meta(spec: ScenarioSpec, scenario_name: str) -> dict[str, Any]:
    """The cell's grid coordinates (stable identity across resumes)."""
    return {
        "scenario": scenario_name,
        "strategy": spec.strategy,
        "hardware": spec.hardware,
        "seed": int(spec.seeds[0]),
        "predictor": spec.fleet.engine.predictor,
    }


def _cell_id(meta: Mapping[str, Any]) -> str:
    cell_id = (
        f"{meta['scenario']}__{meta['strategy']}__{meta['hardware']}"
        f"__seed{meta['seed']}"
    )
    # Predictor-off cells keep the historical id (and file name), so a
    # pre-axis sweep directory resumes cleanly after a schema re-run.
    if meta.get("predictor") is not None:
        cell_id += f"__{meta['predictor']}"
    return cell_id


def sweep_cells(
    scenarios: Sequence[str | ScenarioSpec],
    strategies: Sequence[str] | None = None,
    hardware: Sequence[str] | None = None,
    seeds: Sequence[int] | None = None,
    predictors: Sequence[str | None] | None = None,
    max_requests: int | None = None,
    max_steps: int | None = None,
) -> list[tuple[str, dict[str, Any], ScenarioSpec]]:
    """Expand the sweep grid into ``(cell_id, meta, spec)`` triples.

    ``scenarios`` entries are registry names or literal specs. A
    ``None`` axis keeps each scenario's own value (its configured
    strategy / hardware / seed list); an explicit axis applies to every
    scenario. The ``predictors`` axis admits ``None`` entries meaning
    "predictor off" — ``(None, "transition")`` races the heuristic
    against the predictor cell-for-cell. Cells are returned sorted by
    cell id — the deterministic order the merged report uses.
    """
    if not scenarios:
        raise ConfigError("sweep needs at least one scenario")
    cells: list[tuple[str, dict[str, Any], ScenarioSpec]] = []
    seen: set[str] = set()
    for entry in scenarios:
        base = get_scenario(entry) if isinstance(entry, str) else entry
        if not isinstance(base, ScenarioSpec):
            raise ConfigError(
                f"sweep scenarios must be names or ScenarioSpecs, got "
                f"{type(entry).__name__}"
            )
        strategy_axis = list(strategies) if strategies else [None]
        hardware_axis = list(hardware) if hardware else [None]
        seed_axis = [int(s) for s in seeds] if seeds else list(base.seeds)
        predictor_axis = list(predictors) if predictors else [None]
        for strategy in strategy_axis:
            for hw in hardware_axis:
                for seed in seed_axis:
                    for predictor in predictor_axis:
                        spec = base.with_overrides(
                            strategy=strategy,
                            hardware=hw,
                            seed=seed,
                            predictor=predictor,
                            max_requests=max_requests,
                            max_steps=max_steps,
                        )
                        meta = _cell_meta(spec, base.name)
                        cell_id = _cell_id(meta)
                        if cell_id in seen:
                            raise ConfigError(
                                f"duplicate sweep cell {cell_id!r} (the same "
                                f"scenario appears twice on the grid)"
                            )
                        seen.add(cell_id)
                        cells.append((cell_id, meta, spec))
    cells.sort(key=lambda c: c[0])
    return cells


# ----------------------------------------------------------------------
# cell execution (runs inside worker processes)
# ----------------------------------------------------------------------
def _report_payload(report) -> dict[str, Any]:
    """Flatten a ServingReport or FleetReport into plain JSON rows."""
    # FleetReport quacks differently from ServingReport: detect by the
    # per_replica attribute rather than importing fleet types in the
    # worker (ServingReport also has a `merged` *classmethod*, so that
    # name does not discriminate).
    if hasattr(report, "per_replica"):
        merged = report.merged
        payload = {
            "kind": "fleet",
            "summary": _jsonify(report.summary()),
            "per_request": _jsonify(merged.per_request_rows()),
            "class_summary": _jsonify(merged.class_summary()),
            "per_replica": _jsonify(
                [
                    {"replica": rid, **rep.summary()}
                    for rid, rep in report.per_replica
                ]
            ),
            "assignments": {
                str(rid): count
                for rid, count in sorted(report.assignment_counts().items())
            },
        }
    else:
        payload = {
            "kind": "serving",
            "summary": _jsonify(report.summary()),
            "per_request": _jsonify(report.per_request_rows()),
            "class_summary": _jsonify(report.class_summary()),
        }
    return payload


def run_cell(spec: ScenarioSpec, seed: int | None = None) -> dict[str, Any]:
    """Run one scenario cell and return its JSON payload.

    Captures every warning the run emits (e.g. the non-monotone-trace
    reorder warning from
    :func:`~repro.serving.engine.requests_from_trace`) into the
    payload's ``warnings`` list — a scenario built on a warning-emitting
    trace reports it in its cell output instead of swallowing it.
    """
    spec = spec if seed is None else spec.with_overrides(seed=seed)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = spec.run()
    payload: dict[str, Any] = {
        "schema": SWEEP_SCHEMA_VERSION,
        "cell": _cell_meta(spec, spec.name),
        "spec": spec.to_dict(),
    }
    payload.update(_report_payload(report))
    payload["warnings"] = [
        {"category": w.category.__name__, "message": str(w.message)}
        for w in caught
    ]
    return payload


def _run_cell_to_file(args: tuple[dict[str, Any], str, str]) -> str:
    """Worker entry point: run one cell and atomically write its file."""
    spec_dict, cell_path, _cell_id_label = args
    spec = ScenarioSpec.from_dict(spec_dict)
    payload = run_cell(spec)
    _atomic_write(Path(cell_path), _dumps(payload))
    return _cell_id_label


# ----------------------------------------------------------------------
# merged report
# ----------------------------------------------------------------------
@dataclass
class SweepReport:
    """The pooled outcome of a sweep: one payload per cell, id-sorted."""

    cells: list[dict[str, Any]] = field(default_factory=list)

    @property
    def cell_ids(self) -> list[str]:
        return [_cell_id(c["cell"]) for c in self.cells]

    def cell(
        self,
        scenario: str,
        strategy: str | None = None,
        hardware: str | None = None,
        seed: int | None = None,
        predictor: str | None = None,
    ) -> dict[str, Any]:
        """The unique cell matching the given coordinates."""
        matches = [
            c
            for c in self.cells
            if c["cell"]["scenario"] == scenario
            and (strategy is None or c["cell"]["strategy"] == strategy)
            and (hardware is None or c["cell"]["hardware"] == hardware)
            and (seed is None or c["cell"]["seed"] == seed)
            and (predictor is None or c["cell"].get("predictor") == predictor)
        ]
        if len(matches) != 1:
            raise ConfigError(
                f"{len(matches)} sweep cells match scenario={scenario!r} "
                f"strategy={strategy!r} hardware={hardware!r} seed={seed!r}"
            )
        return matches[0]

    def rows(self) -> list[dict[str, Any]]:
        """One flat table row per cell (for ``format_table`` / CSV)."""
        rows = []
        for cell in self.cells:
            summary = cell.get("summary", {})
            rows.append(
                {
                    "scenario": cell["cell"]["scenario"],
                    "strategy": cell["cell"]["strategy"],
                    "hardware": cell["cell"]["hardware"],
                    "seed": cell["cell"]["seed"],
                    "predictor": cell["cell"].get("predictor"),
                    "kind": cell.get("kind", ""),
                    "requests": summary.get("requests"),
                    "completed": summary.get("completed"),
                    "goodput_rps": summary.get("goodput_rps"),
                    "p99_ttft_s": summary.get("p99_ttft_s"),
                    "p99_tbt_s": summary.get("p99_tbt_s"),
                    "hit_rate": summary.get("hit_rate"),
                    "warnings": len(cell.get("warnings", [])),
                }
            )
        return rows

    def to_json(self) -> str:
        """Deterministic merged-report encoding (the ``sweep.json`` bytes)."""
        return _dumps(
            {
                "schema": SWEEP_SCHEMA_VERSION,
                "num_cells": len(self.cells),
                "cells": self.cells,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        data = json.loads(text)
        if data.get("schema") != SWEEP_SCHEMA_VERSION:
            raise ConfigError(
                f"sweep report schema {data.get('schema')!r} != "
                f"{SWEEP_SCHEMA_VERSION} (re-run the sweep)"
            )
        return cls(cells=list(data.get("cells", [])))

    @classmethod
    def load(cls, out_dir: str | Path) -> "SweepReport":
        """Read a merged report back from a sweep output directory."""
        return cls.from_json((Path(out_dir) / _MERGED_NAME).read_text())


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def _reusable(path: Path, meta: Mapping[str, Any], spec: ScenarioSpec) -> bool:
    """Whether an existing cell file is a trusted result for this cell.

    Trust requires the file to parse, carry the current schema, and
    embed exactly this cell's coordinates and spec — anything else
    (torn writes, schema bumps, a scenario whose definition changed
    since the file was written) re-runs the cell.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return (
        isinstance(data, dict)
        and data.get("schema") == SWEEP_SCHEMA_VERSION
        and data.get("cell") == dict(meta)
        and data.get("spec") == spec.to_dict()
        and "summary" in data
    )


def run_sweep(
    scenarios: Sequence[str | ScenarioSpec],
    out_dir: str | Path,
    strategies: Sequence[str] | None = None,
    hardware: Sequence[str] | None = None,
    seeds: Sequence[int] | None = None,
    predictors: Sequence[str | None] | None = None,
    processes: int = 1,
    max_requests: int | None = None,
    max_steps: int | None = None,
    force: bool = False,
    log: Callable[[str], None] | None = None,
) -> SweepReport:
    """Run (or resume) a sweep grid; returns the merged report.

    Parameters
    ----------
    scenarios:
        Registry names and/or literal :class:`ScenarioSpec` objects.
    out_dir:
        Output directory: per-cell files land in ``out_dir/cells/``,
        the merged report in ``out_dir/sweep.json``. Re-running with
        the same directory resumes — completed cells are skipped and
        the merged report is byte-identical to an uninterrupted run.
    strategies / hardware / seeds / predictors:
        Override axes; ``None`` keeps each scenario's own value. The
        ``predictors`` axis admits ``None`` entries ("predictor off").
    processes:
        Worker processes for pending cells (1 = run serially in this
        process; results are identical either way).
    max_requests / max_steps:
        Workload size caps applied to every cell (CI smoke controls).
    force:
        Re-run every cell even when a trusted file exists.
    log:
        Optional progress sink (e.g. ``print``); one line per cell.
    """
    if processes < 1:
        raise ConfigError(f"processes must be >= 1, got {processes}")
    out_path = Path(out_dir)
    cell_dir = out_path / _CELL_DIR
    cell_dir.mkdir(parents=True, exist_ok=True)

    cells = sweep_cells(
        scenarios,
        strategies=strategies,
        hardware=hardware,
        seeds=seeds,
        predictors=predictors,
        max_requests=max_requests,
        max_steps=max_steps,
    )
    say = log or (lambda _line: None)

    pending: list[tuple[dict[str, Any], str, str]] = []
    for cell_id, meta, spec in cells:
        path = cell_dir / f"{cell_id}.json"
        if not force and _reusable(path, meta, spec):
            say(f"[skip] {cell_id} (completed cell reused)")
            continue
        pending.append((spec.to_dict(), str(path), cell_id))

    if pending:
        if processes > 1 and len(pending) > 1:
            with multiprocessing.Pool(min(processes, len(pending))) as pool:
                for done in pool.imap_unordered(_run_cell_to_file, pending):
                    say(f"[done] {done}")
        else:
            for args in pending:
                say(f"[done] {_run_cell_to_file(args)}")

    # Merge by re-reading the files: the bytes on disk are the source
    # of truth, so resumed and uninterrupted sweeps merge identically.
    payloads = []
    for cell_id, _meta, _spec in cells:
        path = cell_dir / f"{cell_id}.json"
        try:
            payloads.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"sweep cell {cell_id!r} has no readable output at {path}: {exc}"
            ) from None
    report = SweepReport(cells=payloads)
    _atomic_write(out_path / _MERGED_NAME, report.to_json())
    say(f"[merged] {len(payloads)} cells -> {out_path / _MERGED_NAME}")
    return report


def load_cells(out_dir: str | Path) -> Iterable[dict[str, Any]]:
    """Yield raw cell payloads from a sweep directory (id-sorted)."""
    cell_dir = Path(out_dir) / _CELL_DIR
    for path in sorted(cell_dir.glob("*.json")):
        yield json.loads(path.read_text())
