"""Scenario registry and parallel sweep runner.

``repro.scenarios`` is the reproduction's answer-machine for "does the
scheduling win hold under X?": frozen, JSON-round-trippable
:class:`ScenarioSpec` objects (workload x hardware preset x
engine/serving/fleet configuration x seeds) behind a named registry,
plus :func:`run_sweep`, which fans scenarios x strategies x hardware
out over worker processes into resumable per-cell JSON outputs and a
pooled :class:`SweepReport`.

Importing this package registers the built-in scenarios
(:data:`BUILTIN_SCENARIOS`).
"""

from repro.scenarios.builtin import BUILTIN_SCENARIOS
from repro.scenarios.registry import (
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.scenario import ScenarioSpec
from repro.scenarios.spec import EngineSpec, FleetSpec, ServingSpec, WorkloadRecipe
from repro.scenarios.sweep import (
    SWEEP_SCHEMA_VERSION,
    SweepReport,
    run_cell,
    run_sweep,
    sweep_cells,
)

__all__ = [
    "EngineSpec",
    "ServingSpec",
    "FleetSpec",
    "WorkloadRecipe",
    "ScenarioSpec",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "BUILTIN_SCENARIOS",
    "SWEEP_SCHEMA_VERSION",
    "SweepReport",
    "run_cell",
    "run_sweep",
    "sweep_cells",
]
