"""Typed, JSON-round-trippable configuration specs.

PRs 1-8 grew ``make_engine`` / ``make_serving_engine`` / ``make_fleet``
to ~20 keyword arguments each. This module consolidates that kwarg
sprawl into three frozen dataclasses that compose the way the systems
they configure do::

    EngineSpec                 one inference engine (model x strategy x
                               hardware x cache topology)
      -> ServingSpec           a continuous-batching serving loop over it
        -> FleetSpec           M replica serving engines behind a router

plus :class:`WorkloadRecipe`, a declarative request-trace description.
Every spec

- validates its fields eagerly (unknown strategy / hardware / placement
  names raise :class:`~repro.errors.ConfigError` at construction, not
  at build time deep inside a sweep worker);
- round-trips through plain JSON dicts: ``Spec.from_dict(s.to_dict())
  == s`` and ``s.to_dict()`` contains only JSON primitives — this is
  what lets the sweep runner ship specs to worker processes and stamp
  them into resumable per-cell output files;
- builds the real object via the factory it replaces (``build()``), so
  a spec-built engine is **bit-identical** to the equivalent kwarg
  call — the factories now route their legacy kwargs through these
  specs, and the spec-equivalence tests enforce it.

The legacy keyword arguments on the factories remain as thin shims
(they construct a spec internally); new code should build specs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import InferenceEngine
    from repro.fleet.fleet import FleetRouter
    from repro.serving.engine import ServingEngine
    from repro.workloads.generator import ArrivedWorkload

__all__ = [
    "EngineSpec",
    "ServingSpec",
    "FleetSpec",
    "WorkloadRecipe",
]


def _check_dict_keys(cls, data: Mapping[str, Any]) -> None:
    """Reject unknown keys so typos fail loudly instead of silently."""
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"{cls.__name__}.from_dict needs a mapping, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} keys: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


def _plain(value):
    """Coerce a spec field value to JSON-representable primitives."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, list):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class EngineSpec:
    """Declarative recipe for one :class:`~repro.engine.engine.InferenceEngine`.

    Field-for-field this mirrors the name-based keyword arguments of
    :func:`~repro.engine.factory.make_engine`; unlike the kwargs it only
    admits *preset names* (never model/strategy/profile instances), so a
    spec is pure data — comparable, hashable and JSON-round-trippable.

    Attributes
    ----------
    model / num_layers:
        Model preset name and optional layer-count override.
    strategy:
        Strategy short name (``"hybrimoe"``, ``"ondemand"``, ...).
    cache_ratio / seed:
        GPU expert cache ratio and root seed.
    hardware:
        Hardware preset name (``"paper"``, ``"disk-slow"``, ``"edge"``, ...).
    num_gpus / placement:
        Simulated device count and sharded-cache placement policy.
    planner_fast_path / engine_fast_path:
        Planner / engine-core implementation toggles (bit-identical
        outputs either way; latency knobs only).
    cpu_cache_capacity / cpu_cache_policy / disk_bandwidth:
        Tiered-memory knobs (``None`` capacity keeps the classic
        two-tier engine).
    predictor / predict_horizon / confidence_gate:
        Predictive-scheduling knobs: cross-layer expert predictor name
        (``None`` keeps the heuristic prefetcher bit-identically), the
        deepest lookahead a confident predictor may extend to, and the
        calibrated-confidence threshold of the gate.
    """

    model: str = "deepseek"
    num_layers: int | None = None
    strategy: str = "hybrimoe"
    cache_ratio: float = 0.5
    hardware: str = "paper"
    seed: int = 0
    num_gpus: int = 1
    placement: str = "round_robin"
    planner_fast_path: bool | None = None
    engine_fast_path: bool = True
    cpu_cache_capacity: int | None = None
    cpu_cache_policy: str = "lru"
    disk_bandwidth: float | None = None
    predictor: str | None = None
    predict_horizon: int = 4
    confidence_gate: float = 0.6

    def __post_init__(self) -> None:
        # Imported here: the factory imports this module lazily inside
        # its functions, so a module-level import back into the factory
        # stack is safe but kept local for symmetry and startup cost.
        from repro.cache.base import available_policies
        from repro.cache.placement import available_placements
        from repro.engine.factory import available_strategies
        from repro.hardware.platform_presets import HARDWARE_PRESETS
        from repro.models.presets import MODEL_PRESETS

        if self.model not in MODEL_PRESETS:
            known = ", ".join(sorted(MODEL_PRESETS))
            raise ConfigError(f"unknown model preset {self.model!r} (known: {known})")
        if self.strategy not in available_strategies():
            known = ", ".join(available_strategies())
            raise ConfigError(f"unknown strategy {self.strategy!r} (known: {known})")
        if self.hardware not in HARDWARE_PRESETS:
            known = ", ".join(sorted(HARDWARE_PRESETS))
            raise ConfigError(
                f"unknown hardware preset {self.hardware!r} (known: {known})"
            )
        if not 0.0 < self.cache_ratio <= 1.0:
            raise ConfigError(
                f"cache_ratio must be in (0, 1], got {self.cache_ratio}"
            )
        if self.num_layers is not None and self.num_layers < 1:
            raise ConfigError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.placement not in available_placements():
            known = ", ".join(available_placements())
            raise ConfigError(f"unknown placement {self.placement!r} (known: {known})")
        if self.cpu_cache_policy not in available_policies():
            known = ", ".join(available_policies())
            raise ConfigError(
                f"unknown cpu_cache_policy {self.cpu_cache_policy!r} (known: {known})"
            )
        if self.cpu_cache_capacity is not None and self.cpu_cache_capacity < 1:
            raise ConfigError(
                f"cpu_cache_capacity must be >= 1 (or None), got "
                f"{self.cpu_cache_capacity}"
            )
        if self.disk_bandwidth is not None and self.disk_bandwidth <= 0:
            raise ConfigError(
                f"disk_bandwidth must be positive (or None), got "
                f"{self.disk_bandwidth}"
            )
        if self.predictor is not None:
            from repro.prediction import available_predictors

            if self.predictor not in available_predictors():
                known = ", ".join(available_predictors())
                raise ConfigError(
                    f"unknown predictor {self.predictor!r} (known: {known})"
                )
        if self.predict_horizon < 1:
            raise ConfigError(
                f"predict_horizon must be >= 1, got {self.predict_horizon}"
            )
        if not 0.0 <= self.confidence_gate <= 1.0:
            raise ConfigError(
                f"confidence_gate must be in [0, 1], got {self.confidence_gate}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        return {f.name: _plain(getattr(self, f.name)) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        _check_dict_keys(cls, data)
        return cls(**dict(data))

    def build(self) -> "InferenceEngine":
        """Construct the engine this spec describes (via ``make_engine``)."""
        from repro.engine.factory import make_engine

        return make_engine(spec=self)


@dataclass(frozen=True)
class ServingSpec:
    """Declarative recipe for a continuous-batching serving engine.

    Composes an :class:`EngineSpec` with the serving-loop knobs of
    :class:`~repro.serving.scheduler.ServingConfig` — the spec analogue
    of :func:`~repro.engine.factory.make_serving_engine`.
    """

    engine: EngineSpec = field(default_factory=EngineSpec)
    max_batch_size: int = 8
    prefill_chunk_tokens: int | None = None
    preemption: bool = False
    request_timeout_s: float | None = None
    shed_queue_depth: int | None = None
    shed_resume_depth: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.engine, EngineSpec):
            raise ConfigError(
                f"ServingSpec.engine must be an EngineSpec, got "
                f"{type(self.engine).__name__}"
            )
        # Delegate range validation to the config the spec describes:
        # one source of truth for the serving-knob invariants.
        self.serving_config()

    def serving_config(self):
        """The :class:`~repro.serving.scheduler.ServingConfig` equivalent."""
        from repro.serving.scheduler import ServingConfig

        return ServingConfig(
            max_batch_size=self.max_batch_size,
            prefill_chunk_tokens=self.prefill_chunk_tokens,
            preemption=self.preemption,
            request_timeout_s=self.request_timeout_s,
            shed_queue_depth=self.shed_queue_depth,
            shed_resume_depth=self.shed_resume_depth,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        data = {
            f.name: _plain(getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name != "engine"
        }
        data["engine"] = self.engine.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        _check_dict_keys(cls, data)
        data = dict(data)
        if "engine" in data:
            data["engine"] = EngineSpec.from_dict(data["engine"])
        return cls(**data)

    def build(self) -> "ServingEngine":
        """Construct the serving engine (via ``make_serving_engine``)."""
        from repro.engine.factory import make_serving_engine

        return make_serving_engine(spec=self)


@dataclass(frozen=True)
class FleetSpec:
    """Declarative recipe for an M-replica serving fleet.

    Composes a per-replica :class:`ServingSpec` with the fleet-level
    knobs of :func:`~repro.engine.factory.make_fleet`. ``replicas=1``
    is meaningful to the scenario layer: it means "serve on the bare
    single engine" (a :class:`~repro.serving.engine.ServingEngine`,
    reporting a ``ServingReport``), not a one-replica fleet — the two
    are bit-identical, but the report types differ.
    """

    serving: ServingSpec = field(default_factory=ServingSpec)
    replicas: int = 2
    router: str = "round_robin"
    max_retries: int = 0
    retry_backoff_s: float = 0.5

    def __post_init__(self) -> None:
        from repro.fleet.router import available_routers

        if not isinstance(self.serving, ServingSpec):
            raise ConfigError(
                f"FleetSpec.serving must be a ServingSpec, got "
                f"{type(self.serving).__name__}"
            )
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.router not in available_routers():
            known = ", ".join(available_routers())
            raise ConfigError(f"unknown router {self.router!r} (known: {known})")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s <= 0:
            raise ConfigError(
                f"retry_backoff_s must be positive, got {self.retry_backoff_s}"
            )

    @property
    def engine(self) -> EngineSpec:
        """Shortcut to the per-replica engine spec."""
        return self.serving.engine

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        data = {
            f.name: _plain(getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name != "serving"
        }
        data["serving"] = self.serving.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        _check_dict_keys(cls, data)
        data = dict(data)
        if "serving" in data:
            data["serving"] = ServingSpec.from_dict(data["serving"])
        return cls(**data)

    def build(self) -> "FleetRouter":
        """Construct the fleet router (via ``make_fleet``).

        Valid for any ``replicas >= 1``; callers that want the
        scenario-layer "1 replica = bare engine" convention should
        check :attr:`replicas` and build ``self.serving`` instead.
        """
        from repro.engine.factory import make_fleet

        return make_fleet(spec=self)


# ----------------------------------------------------------------------
# workload recipes
# ----------------------------------------------------------------------
#: Per-kind parameter contract: (required keys, optional keys). The
#: builder functions own value validation; the recipe owns key hygiene
#: so a typo'd parameter fails at spec construction.
_RECIPE_KINDS: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "poisson": (
        frozenset({"num_requests", "arrival_rate"}),
        frozenset({"decode_steps", "priority_mix", "class_deadlines", "datasets"}),
    ),
    "diurnal": (
        frozenset({"num_requests", "base_rate", "peak_rate"}),
        frozenset(
            {"period", "decode_steps", "priority_mix", "class_deadlines", "datasets"}
        ),
    ),
    "bursty": (
        frozenset({"num_requests", "base_rate", "burst_rate"}),
        frozenset(
            {
                "burst_every",
                "burst_duration",
                "decode_steps",
                "priority_mix",
                "class_deadlines",
                "datasets",
            }
        ),
    ),
    "trace": (
        frozenset({"arrival_times"}),
        frozenset({"decode_steps", "datasets"}),
    ),
    "skewed": (
        frozenset({"num_requests", "arrival_rate"}),
        frozenset({"num_profiles", "decode_steps", "prompt_length", "dataset"}),
    ),
    "chat": (
        frozenset({"num_sessions"}),
        frozenset(
            {
                "turns_per_session",
                "session_rate",
                "think_time_s",
                "user_tokens",
                "decode_steps",
                "dataset",
            }
        ),
    ),
}

#: Parameters clamped by :meth:`WorkloadRecipe.capped` — the sweep
#: runner's ``--requests`` / ``--steps`` smoke caps.
_REQUEST_CAP_KEYS = ("num_requests", "num_sessions")
_STEP_CAP_KEYS = ("decode_steps",)


@dataclass(frozen=True)
class WorkloadRecipe:
    """Declarative request-trace description: an arrival *kind* + params.

    ``kind`` selects the generator in :mod:`repro.workloads.generator`:

    ========== =========================================================
    kind       builder
    ========== =========================================================
    poisson    :func:`~repro.workloads.generator.serving_workload`
    diurnal    :func:`~repro.workloads.generator.diurnal_arrivals` trace
    bursty     :func:`~repro.workloads.generator.bursty_arrivals` trace
    trace      explicit ``arrival_times`` (non-monotone traces allowed —
               they surface the ``requests_from_trace`` reorder warning
               in the scenario's cell output instead of being rejected)
    skewed     :func:`~repro.workloads.generator.skewed_serving_workload`
    chat       :func:`~repro.workloads.generator.chat_serving_workload`
    ========== =========================================================

    ``params`` must use each builder's keyword names; unknown or
    missing-required keys raise at construction. The build seed comes
    from the scenario (not the recipe), so one recipe replays under
    every sweep seed.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _RECIPE_KINDS:
            known = ", ".join(sorted(_RECIPE_KINDS))
            raise ConfigError(f"unknown workload kind {self.kind!r} (known: {known})")
        if not isinstance(self.params, Mapping):
            raise ConfigError(
                f"WorkloadRecipe params must be a mapping, got "
                f"{type(self.params).__name__}"
            )
        required, optional = _RECIPE_KINDS[self.kind]
        keys = set(self.params)
        unknown = sorted(keys - required - optional)
        if unknown:
            raise ConfigError(
                f"unknown {self.kind!r} workload params: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(required | optional))})"
            )
        missing = sorted(required - keys)
        if missing:
            raise ConfigError(
                f"{self.kind!r} workload is missing required params: "
                f"{', '.join(missing)}"
            )
        # Freeze a JSON-plain copy so to_dict() is stable and callers
        # can't alias internal state through the constructor argument.
        object.__setattr__(self, "params", _plain(dict(self.params)))

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        return {"kind": self.kind, "params": _plain(dict(self.params))}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadRecipe":
        """Rebuild a recipe from :meth:`to_dict` output."""
        _check_dict_keys(cls, data)
        data = dict(data)
        return cls(kind=data.get("kind", ""), params=data.get("params", {}))

    def capped(
        self, max_requests: int | None = None, max_steps: int | None = None
    ) -> "WorkloadRecipe":
        """A copy with request-count / decode-step params clamped down.

        This is the sweep runner's smoke control: CI caps every cell's
        size without editing the registered scenarios. Caps only ever
        shrink a workload — a cap above the recipe's own value is a
        no-op, so capped replays of an already-small scenario are
        byte-identical to uncapped ones.
        """
        params = dict(self.params)
        if max_requests is not None:
            if max_requests < 1:
                raise ConfigError(f"max_requests must be >= 1, got {max_requests}")
            for key in _REQUEST_CAP_KEYS:
                if params.get(key) is not None:
                    params[key] = min(int(params[key]), max_requests)
        if max_steps is not None:
            if max_steps < 0:
                raise ConfigError(f"max_steps must be >= 0, got {max_steps}")
            for key in _STEP_CAP_KEYS:
                if params.get(key) is not None:
                    params[key] = min(int(params[key]), max_steps)
        return WorkloadRecipe(kind=self.kind, params=params)

    def build(self, seed: int = 0, vocab_size: int = 512) -> "list[ArrivedWorkload]":
        """Materialise the recipe as a serving trace.

        A pure function of ``(recipe, seed, vocab_size)`` — the same
        recipe under the same seed always yields the same trace, which
        is what makes sweep cells resumable and replays byte-identical.
        """
        from repro.workloads import generator as wg

        p = dict(self.params)
        decode_steps = int(p.pop("decode_steps", 16))
        if self.kind == "poisson":
            return wg.serving_workload(
                num_requests=int(p.pop("num_requests")),
                arrival_rate=float(p.pop("arrival_rate")),
                decode_steps=decode_steps,
                vocab_size=vocab_size,
                seed=seed,
                **self._mix_kwargs(p),
            )
        if self.kind == "diurnal":
            num_requests = int(p.pop("num_requests"))
            times = wg.diurnal_arrivals(
                num_requests,
                base_rate=float(p.pop("base_rate")),
                peak_rate=float(p.pop("peak_rate")),
                period=float(p.pop("period", 60.0)),
                seed=seed,
            )
            return wg.serving_workload(
                arrival_times=times,
                decode_steps=decode_steps,
                vocab_size=vocab_size,
                seed=seed,
                **self._mix_kwargs(p),
            )
        if self.kind == "bursty":
            num_requests = int(p.pop("num_requests"))
            times = wg.bursty_arrivals(
                num_requests,
                base_rate=float(p.pop("base_rate")),
                burst_rate=float(p.pop("burst_rate")),
                burst_every=float(p.pop("burst_every", 30.0)),
                burst_duration=float(p.pop("burst_duration", 5.0)),
                seed=seed,
            )
            return wg.serving_workload(
                arrival_times=times,
                decode_steps=decode_steps,
                vocab_size=vocab_size,
                seed=seed,
                **self._mix_kwargs(p),
            )
        if self.kind == "trace":
            return self._explicit_trace(decode_steps, seed, vocab_size, p)
        if self.kind == "skewed":
            return wg.skewed_serving_workload(
                num_requests=int(p.pop("num_requests")),
                arrival_rate=float(p.pop("arrival_rate")),
                num_profiles=int(p.pop("num_profiles", 2)),
                decode_steps=decode_steps,
                vocab_size=vocab_size,
                dataset=p.pop("dataset", "chatgpt-prompts"),
                prompt_length=p.pop("prompt_length", None),
                seed=seed,
            )
        # kind == "chat" (the registry rejected everything else)
        return wg.chat_serving_workload(
            num_sessions=int(p.pop("num_sessions")),
            turns_per_session=int(p.pop("turns_per_session", 3)),
            session_rate=float(p.pop("session_rate", 0.5)),
            think_time_s=float(p.pop("think_time_s", 2.0)),
            user_tokens=int(p.pop("user_tokens", 16)),
            decode_steps=decode_steps,
            vocab_size=vocab_size,
            dataset=p.pop("dataset", "chatgpt-prompts"),
            seed=seed,
        )

    @staticmethod
    def _mix_kwargs(params: dict[str, Any]) -> dict[str, Any]:
        """The optional serving_workload kwargs shared by arrival kinds."""
        kwargs: dict[str, Any] = {}
        if params.get("priority_mix") is not None:
            kwargs["priority_mix"] = {
                str(k): float(v) for k, v in params["priority_mix"].items()
            }
        if params.get("class_deadlines") is not None:
            kwargs["class_deadlines"] = {
                str(k): float(v) for k, v in params["class_deadlines"].items()
            }
        if params.get("datasets") is not None:
            kwargs["datasets"] = tuple(params["datasets"])
        return kwargs

    def _explicit_trace(
        self, decode_steps: int, seed: int, vocab_size: int, params: dict[str, Any]
    ) -> "list[ArrivedWorkload]":
        """Entries from explicit arrival instants, preserving trace order.

        Unlike :func:`~repro.workloads.generator.serving_workload`
        (which *rejects* non-monotone traces up front), this path keeps
        the entries in trace order and lets
        :func:`~repro.serving.engine.requests_from_trace` emit its
        reorder ``UserWarning`` at serve time — the scenario layer
        records that warning in the cell output rather than swallowing
        or pre-empting it.
        """
        from repro.workloads.datasets import DATASET_PROFILES, sample_prompt
        from repro.workloads.generator import ArrivedWorkload, WorkloadSpec

        times = [float(t) for t in params.pop("arrival_times")]
        if not times:
            raise ConfigError("trace workload needs at least one arrival time")
        datasets = tuple(params.pop("datasets", ("mtbench", "vicuna", "chatgpt-prompts")))
        for dataset in datasets:
            if dataset not in DATASET_PROFILES:
                raise ConfigError(f"unknown dataset {dataset!r}")
        entries = []
        for index, at_time in enumerate(times):
            dataset = datasets[index % len(datasets)]
            tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
            entries.append(
                ArrivedWorkload(
                    arrival_time=at_time,
                    workload=WorkloadSpec(
                        kind="decode" if decode_steps > 0 else "prefill",
                        dataset=dataset,
                        prompt_tokens=tokens,
                        decode_steps=decode_steps,
                    ),
                )
            )
        return entries
