"""The scenario spec: workload x hardware x system configuration x seeds.

A :class:`ScenarioSpec` is the unit the sweep runner fans out: one
named, frozen, JSON-round-trippable answer to "what exactly are we
serving, on what system, under which seeds?". It composes the typed
config specs (:class:`~repro.scenarios.spec.FleetSpec` wrapping
:class:`~repro.scenarios.spec.ServingSpec` wrapping
:class:`~repro.scenarios.spec.EngineSpec`) with a declarative
:class:`~repro.scenarios.spec.WorkloadRecipe`.

Running a scenario is nothing more than the factory call it denotes:
``spec.run(seed)`` builds the serving engine (or fleet) from the spec
and serves the recipe's trace — so a scenario run is **bit-identical**
to writing the equivalent ``make_serving_engine(...)`` /
``make_fleet(...)`` invocation by hand, which the sweep equivalence
tests enforce.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ConfigError
from repro.scenarios.spec import FleetSpec, WorkloadRecipe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.metrics import ServingReport
    from repro.fleet.fleet import FleetReport
    from repro.workloads.generator import ArrivedWorkload

__all__ = ["ScenarioSpec"]

#: Scenario names become sweep-cell file names; keep them path-safe.
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative serving scenario.

    Attributes
    ----------
    name:
        Registry key and sweep-cell label (lowercase, ``[a-z0-9_-]``).
    workload:
        The request trace to serve (a :class:`WorkloadRecipe`).
    fleet:
        The system to serve it on. ``fleet.replicas == 1`` means the
        bare single serving engine (reports a ``ServingReport``);
        above 1 a router fronts the replica pool (``FleetReport``).
    description:
        One line for ``cli scenarios list``.
    seeds:
        Root seeds the sweep expands into one cell each. A seed
        overrides both the engine seed and the workload build seed, so
        a (scenario, seed) pair fully determines a run.
    """

    name: str
    workload: WorkloadRecipe
    fleet: FleetSpec = field(
        default_factory=lambda: FleetSpec(replicas=1)
    )
    description: str = ""
    seeds: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ConfigError(
                f"scenario name {self.name!r} must match {_NAME_RE.pattern} "
                f"(it becomes sweep-cell file names)"
            )
        if not isinstance(self.workload, WorkloadRecipe):
            raise ConfigError(
                f"ScenarioSpec.workload must be a WorkloadRecipe, got "
                f"{type(self.workload).__name__}"
            )
        if not isinstance(self.fleet, FleetSpec):
            raise ConfigError(
                f"ScenarioSpec.fleet must be a FleetSpec, got "
                f"{type(self.fleet).__name__}"
            )
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ConfigError("ScenarioSpec.seeds must not be empty")
        if len(set(seeds)) != len(seeds):
            raise ConfigError(f"ScenarioSpec.seeds contains duplicates: {seeds}")
        object.__setattr__(self, "seeds", seeds)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """The engine strategy this scenario runs."""
        return self.fleet.engine.strategy

    @property
    def hardware(self) -> str:
        """The hardware preset this scenario runs on."""
        return self.fleet.engine.hardware

    @property
    def kind(self) -> str:
        """``"serving"`` (1 replica) or ``"fleet"`` (replica pool)."""
        return "serving" if self.fleet.replicas == 1 else "fleet"

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_overrides(
        self,
        strategy: str | None = None,
        hardware: str | None = None,
        seed: int | None = None,
        predictor: str | None = None,
        max_requests: int | None = None,
        max_steps: int | None = None,
    ) -> "ScenarioSpec":
        """A copy with sweep-axis overrides applied.

        ``strategy`` / ``hardware`` replace the engine's; ``seed``
        pins ``seeds`` to that single seed (and the engine seed with
        it); ``predictor`` switches on a cross-layer expert predictor
        (``None`` leaves the scenario's own setting untouched — the
        predictor-off cell is every scenario's default, so there is no
        "force off" override); ``max_requests`` / ``max_steps`` cap
        the workload size (smoke runs). Validation reruns on the
        result, so an override naming an unknown strategy or preset
        raises immediately.
        """
        engine = self.fleet.engine
        engine_changes: dict[str, Any] = {}
        if strategy is not None:
            engine_changes["strategy"] = strategy
        if hardware is not None:
            engine_changes["hardware"] = hardware
        if seed is not None:
            engine_changes["seed"] = int(seed)
        if predictor is not None:
            engine_changes["predictor"] = predictor
        changes: dict[str, Any] = {}
        if engine_changes:
            serving = dataclasses.replace(
                self.fleet.serving,
                engine=dataclasses.replace(engine, **engine_changes),
            )
            changes["fleet"] = dataclasses.replace(self.fleet, serving=serving)
        if seed is not None:
            changes["seeds"] = (int(seed),)
        if max_requests is not None or max_steps is not None:
            changes["workload"] = self.workload.capped(
                max_requests=max_requests, max_steps=max_steps
            )
        if not changes:
            return self
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "seeds": list(self.seeds),
            "workload": self.workload.to_dict(),
            "fleet": self.fleet.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"ScenarioSpec.from_dict needs a mapping, got {type(data).__name__}"
            )
        known = {"name", "description", "seeds", "workload", "fleet"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown ScenarioSpec keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "name" not in data or "workload" not in data:
            raise ConfigError("ScenarioSpec.from_dict needs 'name' and 'workload'")
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "workload": WorkloadRecipe.from_dict(data["workload"]),
        }
        if "fleet" in data:
            kwargs["fleet"] = FleetSpec.from_dict(data["fleet"])
        if "description" in data:
            kwargs["description"] = str(data["description"])
        if "seeds" in data:
            kwargs["seeds"] = tuple(int(s) for s in data["seeds"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def build_trace(self, seed: int | None = None) -> "list[ArrivedWorkload]":
        """Materialise the workload trace under one seed.

        Prompts draw from the spec-built model's token universe:
        factory-built preset models always use the reference vocab
        size, which is also the recipe builder's default.
        """
        seed = self.seeds[0] if seed is None else int(seed)
        return self.workload.build(seed=seed)

    def build_system(self, seed: int | None = None):
        """Build the serving engine (1 replica) or fleet this spec names."""
        spec = self if seed is None else self.with_overrides(seed=seed)
        if spec.fleet.replicas == 1:
            return spec.fleet.serving.build()
        return spec.fleet.build()

    def run(self, seed: int | None = None) -> "ServingReport | FleetReport":
        """Serve the scenario's trace on its system; returns the report.

        Exactly equivalent to building the system and trace by hand
        and calling ``serve_trace`` — no scenario-layer processing
        touches the report, which is what keeps a sweep cell
        bit-identical to the direct factory invocation.
        """
        seed = self.seeds[0] if seed is None else int(seed)
        system = self.build_system(seed=seed)
        return system.serve_trace(self.build_trace(seed=seed))
