"""Built-in scenarios: the "does the win hold under X?" battery.

Each scenario below used to be (or would have become) a bespoke
benchmark script with its own flag soup. As registry entries they are
one-liners to run, sweep and compare::

    repro sweep --scenarios chat-multiturn,edge-decode --strategies hybrimoe,ondemand

Sizes are chosen so a full-default cell finishes in seconds; CI smoke
runs cap them further with ``--requests`` / ``--steps``. Importing
:mod:`repro.scenarios` registers everything here exactly once.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import ScenarioSpec
from repro.scenarios.spec import EngineSpec, FleetSpec, ServingSpec, WorkloadRecipe

__all__ = ["BUILTIN_SCENARIOS"]


def _serving(engine: EngineSpec, **serving_kwargs) -> FleetSpec:
    """A single-engine (replicas=1) system around ``engine``."""
    return FleetSpec(
        serving=ServingSpec(engine=engine, **serving_kwargs), replicas=1
    )


register_scenario(
    ScenarioSpec(
        name="chat-multiturn",
        description=(
            "multi-turn chat sessions whose turns share their full prompt "
            "prefix (cross-turn expert-cache reuse)"
        ),
        workload=WorkloadRecipe(
            kind="chat",
            params={
                "num_sessions": 4,
                "turns_per_session": 3,
                "session_rate": 0.5,
                "think_time_s": 2.0,
                "decode_steps": 8,
            },
        ),
        fleet=_serving(
            EngineSpec(strategy="hybrimoe", cache_ratio=0.4, num_layers=6)
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="diurnal-overload",
        description=(
            "sinusoidal day/night arrivals whose crest overloads the "
            "single engine (queueing-delay stress)"
        ),
        workload=WorkloadRecipe(
            kind="diurnal",
            params={
                "num_requests": 20,
                "base_rate": 2.0,
                "peak_rate": 12.0,
                "period": 20.0,
                "decode_steps": 8,
            },
        ),
        fleet=_serving(
            EngineSpec(strategy="hybrimoe", cache_ratio=0.4, num_layers=6),
            max_batch_size=4,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="bursty-shed",
        description=(
            "flash-crowd bursts against watermark overload shedding "
            "(hysteresis between depth 12 and 6)"
        ),
        workload=WorkloadRecipe(
            kind="bursty",
            params={
                "num_requests": 20,
                "base_rate": 1.5,
                "burst_rate": 16.0,
                "burst_every": 10.0,
                "burst_duration": 2.0,
                "decode_steps": 8,
            },
        ),
        fleet=_serving(
            EngineSpec(strategy="hybrimoe", cache_ratio=0.4, num_layers=6),
            max_batch_size=4,
            shed_queue_depth=12,
            shed_resume_depth=6,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="tenant-mix",
        description=(
            "25/75 interactive/batch tenant mix with TBT deadlines, "
            "chunked prefill and cooperative preemption"
        ),
        workload=WorkloadRecipe(
            kind="poisson",
            params={
                "num_requests": 16,
                "arrival_rate": 8.0,
                "decode_steps": 8,
                "priority_mix": {"interactive": 0.25, "batch": 0.75},
                "class_deadlines": {"interactive": 0.5},
            },
        ),
        fleet=_serving(
            EngineSpec(strategy="hybrimoe", cache_ratio=0.4, num_layers=6),
            max_batch_size=4,
            prefill_chunk_tokens=32,
            preemption=True,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="disk-slow-spill",
        description=(
            "SATA-class disk tier under a capacity-limited DRAM cache "
            "(spill-hostile tiered memory)"
        ),
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 12, "arrival_rate": 4.0, "decode_steps": 8},
        ),
        fleet=_serving(
            EngineSpec(
                strategy="hybrimoe",
                cache_ratio=0.25,
                num_layers=6,
                hardware="disk-slow",
                cpu_cache_capacity=24,
                cpu_cache_policy="lru",
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="edge-decode",
        description=(
            "edge-class SoC profile (weak iGPU, shared LPDDR, UFS flash): "
            "every CPU/GPU/transfer ratio shifts"
        ),
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 12, "arrival_rate": 2.0, "decode_steps": 12},
        ),
        fleet=_serving(
            EngineSpec(
                strategy="hybrimoe",
                cache_ratio=0.25,
                num_layers=6,
                hardware="edge",
            ),
            max_batch_size=4,
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="skewed-fleet",
        description=(
            "two hot tenant profiles over a 2-replica fleet with "
            "cache-affinity routing (replica specialisation)"
        ),
        workload=WorkloadRecipe(
            kind="skewed",
            params={
                "num_requests": 16,
                "arrival_rate": 8.0,
                "num_profiles": 2,
                "prompt_length": 12,
                "decode_steps": 8,
            },
        ),
        fleet=FleetSpec(
            serving=ServingSpec(
                engine=EngineSpec(
                    strategy="hybrimoe", cache_ratio=0.4, num_layers=6
                ),
                max_batch_size=4,
            ),
            replicas=2,
            router="cache_affinity",
        ),
    )
)

#: Names registered by this module, in registration order.
BUILTIN_SCENARIOS: tuple[str, ...] = (
    "chat-multiturn",
    "diurnal-overload",
    "bursty-shed",
    "tenant-mix",
    "disk-slow-spill",
    "edge-decode",
    "skewed-fleet",
)
