"""The batch-capable per-step executor shared by generation and serving.

:class:`StepPipeline` is the per-step pipeline formerly inlined in
``InferenceEngine._run_step``, generalised to run **one fused forward
step over a batch of independent sequences**. Each sequence keeps its
own :class:`~repro.models.model.DecodeState` (attention context,
coherence chain, position), so per-sequence numerics are exactly those
of a solo run; the *scheduling* side — routing union, cache accesses,
plan search, transfers, prefetching — sees the merged batch:

- attention is charged once for the batch's total token count;
- the router runs over the concatenated token rows, so per-layer
  ``activated`` is the union of the batch's experts with summed loads;
- the shared expert cache records one access per activated expert of
  the fused step, exactly as a solo step would for its own union.

With a single sequence the pipeline performs the same numpy operations
in the same order as the historical ``_run_step``, so hidden states are
bit-identical — the property the serving equivalence tests pin down.

**Tiered memory.** On a tiered platform
(``EngineConfig.cpu_cache_capacity``) each layer's *spilled* experts —
resident in neither the GPU cache nor the DRAM tier — are computed
before planning and threaded to the strategy via
:class:`LayerContext`; execution stages them disk -> DRAM on the
clock's shared disk link before their CPU compute or PCIe transfer,
and every staged expert is promoted into the DRAM tier afterwards
(policy-managed, so hot experts converge DRAM-resident). Prefetches of
spilled experts ride the full disk -> CPU -> GPU chain, and a strategy
may request a DRAM-only promotion (``(layer, expert, "dram")``) that
pays the disk read without spending PCIe bandwidth. With no CPU-tier
cap the spilled set is always empty and every code path reduces to the
two-tier engine, bit-identically.

**Multi-GPU dispatch.** When the engine runs with a sharded cache
(``num_gpus > 1``, or ``sharded_cache=True``), each layer's activated
experts are partitioned by their home device (the shard that holds or
would cache them) and the strategy plans **one device group at a
time**, in ascending device order: device ``g``'s plan sees only its
own experts and shard residency, its own PCIe link backlog, and the
shared CPU's accumulated backlog from earlier groups — the per-device
arbitration of the paper's min-latency CPU-fallback rule. Attention
and the fused shared-experts block stay on one device per step/layer
(attention on device 0, shared experts on the lowest-indexed device
with routed work), and the layer barrier waits for every device. With
one device the partition is a single group and the dispatch reduces
exactly to the single-GPU path, which is what makes the 1-GPU sharded
configuration bit-identical to the unsharded engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cache.manager import ExpertCache
from repro.cache.sharded import ShardedCacheManager
from repro.cache.tiered import TieredCacheManager
from repro.core.executor import execute_plan
from repro.core.prefetch import PredictedLayer
from repro.core.tasks import ComputeTask
from repro.engine.metrics import StepMetrics
from repro.engine.strategy_base import LayerContext, Strategy
from repro.errors import ConfigError
from repro.models.gating import RouterOutput
from repro.models.model import DecodeState, ReferenceMoEModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.engine import EngineRuntime

__all__ = ["SequenceStep", "BatchStepResult", "StepPipeline"]


@dataclass(frozen=True)
class SequenceStep:
    """One sequence's contribution to a fused step: its tokens + state."""

    tokens: np.ndarray
    state: DecodeState


@dataclass(frozen=True)
class BatchStepResult:
    """Outcome of one fused step over a batch of sequences.

    Attributes
    ----------
    hidden:
        Per-sequence final hidden-state blocks, in input order; entry
        ``i`` has shape ``(len(tokens_i), d_model)``.
    metrics:
        Timing/cache metrics of the fused step (``n_tokens`` is the
        batch total; ``batch_size`` the number of sequences).
    """

    hidden: tuple[np.ndarray, ...]
    metrics: StepMetrics


class StepPipeline:
    """Reusable per-step executor over the engine's clock and cache.

    Parameters
    ----------
    model:
        The functional model (routing + numerics substrate).
    strategy:
        The bound scheduling strategy.
    runtime:
        The engine runtime carrying clock, cache, cost models, config.
    """

    def __init__(
        self,
        model: ReferenceMoEModel,
        strategy: Strategy,
        runtime: "EngineRuntime",
    ) -> None:
        self.model = model
        self.strategy = strategy
        self.runtime = runtime
        #: Engine-core fast path (``EngineConfig.engine_fast_path``):
        #: vectorized per-layer batch work and record-free plan
        #: execution. Every fast branch is bit-identical to the
        #: reference branch (property-test-enforced).
        self.fast = runtime.config.engine_fast_path

    # ------------------------------------------------------------------
    def _cache(self) -> ExpertCache | ShardedCacheManager | TieredCacheManager:
        """The engine's bound expert cache (sharded and/or tiered)."""
        cache = self.runtime.cache
        if cache is None:
            raise ConfigError("engine runtime has no cache bound")
        return cache

    @property
    def config(self):
        """The engine configuration (knobs shared by every step)."""
        return self.runtime.config

    # ------------------------------------------------------------------
    def run_step(
        self, tokens: np.ndarray, state: DecodeState, stage: str
    ) -> tuple[np.ndarray, StepMetrics]:
        """Single-sequence convenience wrapper around :meth:`run_batch`."""
        result = self.run_batch([SequenceStep(tokens, state)], stage)
        return result.hidden[0], result.metrics

    def run_batch(
        self,
        sequences: Sequence[SequenceStep],
        stage: str,
        not_before: float = 0.0,
    ) -> BatchStepResult:
        """Run one fused forward step for a batch of sequences.

        Parameters
        ----------
        sequences:
            Per-sequence token blocks and decode states, in a stable
            order (the serving layer uses admission order).
        stage:
            ``"prefill"`` or ``"decode"`` — recorded in metrics and
            exposed to the strategy via :class:`LayerContext`.
        not_before:
            Earliest simulated time the step may start (a request's
            arrival time); the clock idles up to it when the platform
            is otherwise drained.
        """
        if not sequences:
            raise ConfigError("run_batch requires at least one sequence")
        if not_before < 0:
            raise ConfigError(f"not_before must be non-negative, got {not_before}")
        model = self.model
        cfg = model.config
        runtime = self.runtime
        cache = self._cache()
        clock = runtime.clock

        tokens_list: list[np.ndarray] = []
        states: list[DecodeState] = []
        for seq in sequences:
            tokens = np.asarray(seq.tokens, dtype=np.int64)
            if tokens.ndim != 1 or tokens.size == 0:
                raise ConfigError("each sequence needs a non-empty 1-D token array")
            tokens_list.append(tokens)
            states.append(seq.state)
        sizes = [int(t.size) for t in tokens_list]
        bounds = np.concatenate(([0], np.cumsum(sizes)))
        n_tokens = int(bounds[-1])
        batch_size = len(sizes)
        d_model = cfg.routed_expert_shape.d_model

        step_start = max(clock.compute_frontier, not_before)
        stats_before = cache.stats  # one snapshot: aggregated on sharded caches
        hits_before, misses_before = stats_before.hits, stats_before.misses

        blocks = [
            model.prepare_inputs(tokens, state)
            for tokens, state in zip(tokens_list, states)
        ]
        x = blocks[0] if batch_size == 1 else np.concatenate(blocks, axis=0)
        for layer in range(cfg.num_layers):
            barrier = max(clock.compute_frontier, step_start)
            attn_device = self.strategy.attention_device(layer)
            attn_duration = runtime.cost_actual.attention_time(
                d_model, n_tokens, device=attn_device
            )
            timeline = clock.gpu if attn_device == "gpu" else clock.cpu
            _, attn_end = timeline.reserve(barrier, attn_duration, f"attn L{layer}")

            if batch_size == 1:
                h = model.attention(x, layer, states[0])
            else:
                h = np.concatenate(
                    [
                        model.attention(
                            x[bounds[i] : bounds[i + 1]], layer, states[i]
                        )
                        for i in range(batch_size)
                    ],
                    axis=0,
                )
            z = model.moe_input(h)
            router = model.route(z, layer)
            if self.fast:
                # Same (expert, load) pairs as the reference genexpr:
                # flatnonzero is ascending and tolist() yields the very
                # ints `int(loads[e])` would.
                active_ids = np.flatnonzero(router.loads > 0)
                activated = tuple(
                    zip(active_ids.tolist(), router.loads[active_ids].tolist())
                )
            else:
                activated = tuple(
                    (expert, int(router.loads[expert]))
                    for expert in router.activated_experts()
                )
            cached = frozenset(cache.cached_experts_of_layer(layer))
            if runtime.tiered:
                self._commit_landed_promotions(attn_end)
                spilled = cache.spilled_experts(
                    layer, (expert for expert, _ in activated)
                )
            else:
                spilled = frozenset()
            if runtime.prediction_gate is not None:
                # Feed the predictor every executed layer's activation
                # set — the online observation stream its transition
                # statistics and calibration are fit from.
                runtime.prediction_gate.observe(
                    layer, (expert for expert, _ in activated)
                )
            for expert, _ in activated:
                key = (layer, expert)
                hit = cache.access(key)
                if key in runtime._prefetch_pending:
                    # Prefetch-effectiveness accounting only — a
                    # prefetched expert counts as used when it is still
                    # resident the first time its layer needs it.
                    runtime._prefetch_pending.discard(key)
                    if hit:
                        runtime.prefetch_used += 1

            pcie_backlog = max(0.0, clock.pcie.available_at - attn_end)
            inflight_offsets = tuple(
                (expert, offset)
                for expert, _ in activated
                if expert in cached
                and (
                    offset := runtime.arrivals.get((layer, expert), 0.0) - attn_end
                )
                > 0.0
            )
            ctx = LayerContext(
                layer=layer,
                stage=stage,
                n_tokens=n_tokens,
                router=router,
                activated=activated,
                cached_experts=cached,
                moe_start=attn_end,
                pcie_backlog=pcie_backlog,
                inflight_offsets=inflight_offsets,
                spilled_experts=spilled,
                disk_fetch_s=runtime.disk_fetch_est_s,
            )
            self.strategy.observe_scores(ctx)
            if runtime.sharded:
                routed_tasks = self._run_sharded_layer(ctx)
            else:
                plan = self.strategy.plan_layer(ctx)
                if self.config.validate_plans:
                    plan.validate(dict(activated), set(cached))

                used_keys = {(layer, e) for e, _ in activated if e in cached}
                used_keys.update((layer, t.expert) for t in plan.transfers)
                cache.lock(used_keys)
                execute_plan(
                    plan,
                    clock,
                    runtime.actual_oracle(n_tokens),
                    attn_end,
                    runtime.arrivals,
                    spilled=spilled,
                    collect_records=not self.fast,
                )
                self._promote_spilled(layer, spilled)
                self.strategy.after_layer(ctx, plan)
                cache.unlock_all()
                routed_tasks = plan.routed_compute_tasks()

            routed_out = self._combine_outputs(z, layer, router, routed_tasks)
            shared_out = model.shared_forward(z, layer)
            x = h + model.residual_scale * (shared_out + routed_out)

            self._issue_prefetches(ctx, z)

        for state, size in zip(states, sizes):
            state.position += size
        step_end = clock.compute_frontier
        utilization = clock.utilization_summary(step_start, step_end)
        stats_after = cache.stats
        metrics = StepMetrics(
            stage=stage,
            n_tokens=n_tokens,
            start=step_start,
            end=step_end,
            hits=stats_after.hits - hits_before,
            misses=stats_after.misses - misses_before,
            utilization=utilization,
            batch_size=batch_size,
        )
        if batch_size == 1:
            hidden = (x,)
        else:
            hidden = tuple(x[bounds[i] : bounds[i + 1]] for i in range(batch_size))
        return BatchStepResult(hidden=hidden, metrics=metrics)

    # ------------------------------------------------------------------
    def _commit_landed_promotions(self, now: float) -> None:
        """Flip DRAM residency for prefetch stagings that have landed.

        A prefetch-issued disk read is in flight until its reserved
        finish time; an expert becomes DRAM-resident only for layers
        whose MoE phase starts after that — otherwise a backlogged disk
        link could make spilled weights usable before they exist in
        host memory. Commits run in (finish, key) order so runs stay
        deterministic.
        """
        runtime = self.runtime
        if not runtime.pending_dram:
            return
        cache = self._cache()
        landed = sorted(
            (ready, key)
            for key, ready in runtime.pending_dram.items()
            if ready <= now
        )
        for ready, key in landed:
            del runtime.pending_dram[key]
            cache.promote_to_dram(key)

    def _promote_spilled(self, layer: int, spilled: frozenset[int]) -> None:
        """DRAM-insert every spilled expert the layer just staged.

        The plan covers all activated experts, so each spilled one paid
        a disk read (for its CPU compute or its transfer chain); its
        weights now sit in host DRAM and the tier's policy decides what
        they displace. Ascending expert id keeps runs deterministic.
        """
        if not spilled:
            return
        cache = self._cache()
        for expert in sorted(spilled):
            key = (layer, expert)
            cache.promote_to_dram(key)
            # The layer just paid its own read; a prefetch staging of
            # the same key still in flight is superseded.
            self.runtime.pending_dram.pop(key, None)

    def _run_sharded_layer(self, ctx: LayerContext) -> list[ComputeTask]:
        """Plan and execute one layer's experts across the GPU fleet.

        Partitions the activated experts by home device, then walks the
        device groups in ascending order. Each group is planned with
        **that device's** shard residency, PCIe-link backlog and the
        shared CPU's accumulated backlog (earlier groups' CPU-fallback
        work queues ahead — the per-device min-latency arbitration),
        executed on that device's timelines, and handed back to the
        strategy for cache maintenance. Exactly one group per layer —
        the lowest-indexed device with routed work — carries the fused
        shared-experts block.

        Returns the routed compute tasks of every device plan, for the
        numerical recombination step.
        """
        runtime = self.runtime
        clock = runtime.clock
        manager = self._cache()
        layer = ctx.layer

        groups: dict[int, list[tuple[int, int]]] = {}
        for expert, load in ctx.activated:
            device = manager.device_of((layer, expert))
            groups.setdefault(device, []).append((expert, load))
        if not groups:
            return []
        shared_device = min(groups)

        routed_tasks: list[ComputeTask] = []
        for device in sorted(groups):
            group = tuple(groups[device])
            cached_dev = frozenset(manager.device_experts_of_layer(layer, device))
            pcie_backlog = max(
                0.0, clock.pcie_timeline(device).available_at - ctx.moe_start
            )
            cpu_backlog = max(0.0, clock.cpu.available_at - ctx.moe_start)
            inflight_dev = tuple(
                (expert, offset)
                for expert, _ in group
                if expert in cached_dev
                and (
                    offset := runtime.arrivals.get((layer, expert), 0.0)
                    - ctx.moe_start
                )
                > 0.0
            )
            dev_spilled = frozenset(
                expert for expert, _ in group if expert in ctx.spilled_experts
            )
            dev_ctx = LayerContext(
                layer=layer,
                stage=ctx.stage,
                n_tokens=ctx.n_tokens,
                router=ctx.router,
                activated=group,
                cached_experts=cached_dev,
                moe_start=ctx.moe_start,
                pcie_backlog=pcie_backlog,
                inflight_offsets=inflight_dev,
                device_id=device,
                include_shared=device == shared_device,
                cpu_backlog=cpu_backlog,
                spilled_experts=dev_spilled,
                disk_fetch_s=ctx.disk_fetch_s,
            )
            plan = self.strategy.plan_layer(dev_ctx)
            if self.config.validate_plans:
                plan.validate(dict(group), set(cached_dev))

            used_keys = {(layer, e) for e, _ in group if e in cached_dev}
            used_keys.update((layer, t.expert) for t in plan.transfers)
            manager.lock(used_keys)
            execute_plan(
                plan,
                clock,
                runtime.actual_oracle(ctx.n_tokens),
                ctx.moe_start,
                runtime.arrivals,
                device=device,
                spilled=dev_spilled,
                collect_records=not self.fast,
            )
            self._promote_spilled(layer, dev_spilled)
            self.strategy.after_layer(dev_ctx, plan)
            manager.unlock_all()
            routed_tasks.extend(plan.routed_compute_tasks())
        return routed_tasks

    def _combine_outputs(
        self,
        z: np.ndarray,
        layer: int,
        router: RouterOutput,
        routed_tasks: Sequence[ComputeTask],
    ) -> np.ndarray:
        """Recombine per-task expert outputs (ascending expert id).

        Matches :meth:`ReferenceMoEModel.moe_forward` accumulation order
        so scheduled execution is numerically identical to the
        reference forward pass — regardless of which device (or how
        many devices) computed each expert.

        The fast path resolves each expert's token rows and routing
        weights with **one** ``np.nonzero`` (the reference helpers each
        run their own), and accumulates with ``out[rows] +=`` — legal
        because top-k indices are distinct per token row, so each
        expert's row list has no duplicates and the fancy-index add
        performs the exact same additions ``np.add.at`` would.
        """
        out = np.zeros_like(z)
        model = self.model
        if self.fast:
            topk_idx = router.topk_idx
            topk_weights = router.topk_weights
            dtype = z.dtype
            if z.shape[0] == 1:
                # Single-token decode: every routed expert sits in row
                # 0's top-k, so row/column resolution is a plain list
                # lookup and the scalar weight multiply performs the
                # same IEEE-754 ops as the broadcast below.
                row_experts = topk_idx[0].tolist()
                weights_row = topk_weights[0]
                for task in sorted(routed_tasks, key=lambda t: t.expert):
                    col = row_experts.index(task.expert)
                    expert_out = model.expert_forward(z, layer, task.expert)
                    out += expert_out * dtype.type(weights_row[col])
                return out
            for task in sorted(routed_tasks, key=lambda t: t.expert):
                rows, cols = np.nonzero(topk_idx == task.expert)
                weights = topk_weights[rows, cols]
                expert_out = model.expert_forward(z[rows], layer, task.expert)
                out[rows] += expert_out * weights[:, None].astype(dtype)
            return out
        for task in sorted(routed_tasks, key=lambda t: t.expert):
            rows = router.tokens_for_expert(task.expert)
            weights = router.weights_for_expert(task.expert)
            expert_out = model.expert_forward(z[rows], layer, task.expert)
            np.add.at(out, rows, expert_out * weights[:, None].astype(z.dtype))
        return out

    def _issue_prefetches(self, ctx: LayerContext, z: np.ndarray) -> None:
        """Build predictions, ask the strategy, and reserve transfers.

        Predictions pool gate scores over every token row of the fused
        batch, so the prefetcher optimises for the *merged* near-future
        routing of all concurrent requests. On a sharded platform each
        granted prefetch rides its expert's **home device** link and
        lands in that device's shard; the PCIe budget is probed against
        the least-backlogged link (optimistic — per-key contention is
        re-checked implicitly when the transfer queues on its link).
        """
        runtime = self.runtime
        cache = self._cache()
        cfg = self.model.config
        num_layers = cfg.num_layers
        gate = runtime.prediction_gate
        # The heuristic window is `prefetch_lookahead`; a confident
        # predictor extends it up to its calibrated depth (capped by
        # `predict_horizon` via the predictor's own horizon) — the
        # lead-time hint of the confidence gate. With no gate bound (or
        # one that never fires) `depth == prefetch_lookahead` and every
        # line below computes exactly the historical floats.
        depth = self.config.prefetch_lookahead
        if gate is not None:
            depth = max(depth, gate.confident_depth(ctx.layer))
        predictions: list[PredictedLayer] = []
        for distance in range(1, depth + 1):
            future = ctx.layer + distance
            if future >= num_layers:
                break
            scores = self.model.gate_scores(z, future).mean(axis=0)
            confidence = None
            if gate is not None:
                scores, confidence = gate.advise(ctx.layer, distance, scores)
            if distance > self.config.prefetch_lookahead and confidence is None:
                # Beyond the heuristic window only gate-backed
                # predictions ride; an unconfident deep layer is noise.
                continue
            if runtime.tiered:
                future_spilled = cache.spilled_experts(
                    future, range(cfg.num_routed_experts)
                )
            else:
                future_spilled = frozenset()
            predictions.append(
                PredictedLayer(
                    layer=future,
                    scores=scores,
                    n_tokens=ctx.n_tokens,
                    cached_experts=frozenset(cache.cached_experts_of_layer(future)),
                    spilled_experts=future_spilled,
                    confidence=confidence,
                )
            )
        if not predictions:
            return
        d_model = cfg.routed_expert_shape.d_model
        attn_est = runtime.cost_estimated.attention_time(d_model, ctx.n_tokens)
        # A transfer is useful if it lands before its layer's MoE phase:
        # roughly `distance` layer spans away. The just-executed layer's
        # span (MoE makespan + one attention window) is the best local
        # estimate of that span. PCIe work already queued (on-demand
        # loads, earlier prefetches) eats into the window — when the
        # link is saturated, prefetching only adds contention.
        layer_span = (runtime.clock.compute_frontier - ctx.moe_start) + attn_est
        backlog = max(
            0.0,
            runtime.clock.min_pcie_available_at - runtime.clock.compute_frontier,
        )
        budget = depth * max(layer_span, attn_est) - backlog
        if budget <= 0:
            return
        requests = self.strategy.prefetch_requests(
            ctx,
            predictions,
            budget,
            layer_span_s=max(layer_span, attn_est),
            backlog_s=backlog,
        )
        for request in requests:
            future_layer, expert = request[0], request[1]
            target = request[2] if len(request) > 2 else "gpu"
            key = (future_layer, expert)
            if key in cache:
                continue
            # A spilled expert is staged disk -> DRAM first; a GPU-bound
            # prefetch then rides PCIe *after* the disk read lands, and
            # a "dram" request stops there (staging without spending
            # PCIe bandwidth or a GPU slot). DRAM residency flips when
            # a later layer starts past the read's finish time
            # (_commit_landed_promotions); a key already staging is
            # never re-read.
            ready = ctx.moe_start
            if runtime.tiered and cache.is_spilled(key):
                pending_ready = runtime.pending_dram.get(key)
                if pending_ready is None:
                    disk_duration = runtime.cost_actual.disk_transfer_time(
                        cfg.routed_expert_shape
                    )
                    _, ready = runtime.clock.disk.reserve(
                        ctx.moe_start,
                        disk_duration,
                        f"disk L{future_layer} E{expert}",
                    )
                    runtime.pending_dram[key] = ready
                else:
                    ready = max(ctx.moe_start, pending_ready)
            if target == "dram":
                continue
            if runtime.sharded:
                device = cache.device_of(key)
                # A zero-capacity home shard (aggregate budget smaller
                # than the fleet) can never admit the expert — paying
                # for the transfer would be pure PCIe waste.
                if cache.shards[device].capacity == 0:
                    continue
            else:
                device = 0
            duration = runtime.cost_actual.transfer_time(cfg.routed_expert_shape)
            _, finish = runtime.clock.pcie_timeline(device).reserve(
                ready, duration, f"prefetch L{future_layer} E{expert}"
            )
            runtime.arrivals[key] = finish
            cache.insert(key)
            runtime.prefetch_issued += 1
            runtime._prefetch_pending.add(key)
