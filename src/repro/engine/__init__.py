"""Inference engine: binds model, hardware substrate and a strategy.

:class:`~repro.engine.engine.InferenceEngine` drives prefill and decode
through the functional model while charging every operation to the
discrete-event clock. Scheduling behaviour is pluggable through
:class:`~repro.engine.strategy_base.Strategy` implementations — the
HybriMoE strategy lives in :mod:`repro.core.strategy`, the four
baselines in :mod:`repro.baselines`.
"""

from repro.engine.engine import EngineConfig, EngineRuntime, InferenceEngine
from repro.engine.factory import (
    available_strategies,
    make_engine,
    make_fleet,
    make_serving_engine,
    make_strategy,
)
from repro.engine.metrics import (
    GenerationResult,
    RequestRecord,
    ServingReport,
    StepMetrics,
    latency_percentiles,
)
from repro.engine.pipeline import BatchStepResult, SequenceStep, StepPipeline
from repro.engine.session import GenerationSession
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = [
    "InferenceEngine",
    "EngineConfig",
    "EngineRuntime",
    "Strategy",
    "LayerContext",
    "StepMetrics",
    "GenerationResult",
    "RequestRecord",
    "ServingReport",
    "latency_percentiles",
    "StepPipeline",
    "SequenceStep",
    "BatchStepResult",
    "GenerationSession",
    "make_engine",
    "make_strategy",
    "make_serving_engine",
    "make_fleet",
    "available_strategies",
]
