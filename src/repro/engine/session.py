"""Generation sessions: repeatable prompt-to-completion runs.

A :class:`GenerationSession` freezes a full system configuration
(model, strategy, cache ratio, hardware, seed) and runs independent
workloads against it — each run gets a *fresh* engine so clocks and
caches start cold, which is what the paper's per-configuration
measurements assume.

Since the multi-request refactor, a session is a thin wrapper over the
serving loop: :meth:`GenerationSession.run` serves a single request
(bit-identical to ``InferenceEngine.generate`` by the serving
equivalence contract), and :meth:`GenerationSession.serve` runs a full
arrival trace under continuous batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.engine import EngineConfig
from repro.engine.factory import make_engine
from repro.engine.metrics import GenerationResult, ServingReport
from repro.errors import ConfigError
from repro.rng import derive_rng

__all__ = ["SessionSpec", "GenerationSession"]


@dataclass(frozen=True)
class SessionSpec:
    """Frozen system configuration for a session."""

    model: str = "deepseek"
    strategy: str = "hybrimoe"
    cache_ratio: float = 0.5
    hardware: str = "paper"
    num_layers: int | None = None
    seed: int = 0
    strategy_kwargs: dict = field(default_factory=dict)
    engine_config: EngineConfig | None = None


class GenerationSession:
    """Run generations against one frozen configuration."""

    def __init__(self, spec: SessionSpec | None = None, **kwargs) -> None:
        if spec is None:
            spec = SessionSpec(**kwargs)
        elif kwargs:
            raise ConfigError("pass either a SessionSpec or keyword fields, not both")
        self.spec = spec

    def _fresh_engine(self):
        return make_engine(
            model=self.spec.model,
            strategy=self.spec.strategy,
            cache_ratio=self.spec.cache_ratio,
            hardware=self.spec.hardware,
            num_layers=self.spec.num_layers,
            seed=self.spec.seed,
            engine_config=self.spec.engine_config,
            strategy_kwargs=dict(self.spec.strategy_kwargs),
        )

    def run(
        self,
        prompt_tokens: np.ndarray | None = None,
        prompt_len: int = 128,
        decode_steps: int = 32,
        prompt_seed: int = 0,
    ) -> GenerationResult:
        """Run one generation on a fresh engine via the serving loop.

        The single request arrives at time zero with the engine-default
        sampling stream, so the result is bit-identical to calling
        ``InferenceEngine.generate`` directly.

        Parameters
        ----------
        prompt_tokens:
            Explicit prompt ids; when omitted, ``prompt_len`` random
            ids are drawn deterministically from ``prompt_seed``.
        prompt_len:
            Prompt length for the synthetic prompt.
        decode_steps:
            Number of decode tokens to generate after prefill.
        prompt_seed:
            Seed of the synthetic prompt (vary for repeated trials).
        """
        from repro.serving.engine import ServingEngine
        from repro.serving.request import Request

        engine = self._fresh_engine()
        if prompt_tokens is None:
            if prompt_len <= 0:
                raise ConfigError(f"prompt_len must be positive, got {prompt_len}")
            rng = derive_rng(self.spec.seed, "session", "prompt", prompt_seed)
            prompt_tokens = rng.integers(0, engine.model.vocab_size, size=prompt_len)
        request = Request(
            request_id=0,
            prompt_tokens=np.asarray(prompt_tokens),
            decode_steps=decode_steps,
            arrival_time=0.0,
            sample_seed=None,
        )
        ServingEngine(engine).serve([request])
        assert request.result is not None
        return request.result

    def serve(
        self,
        num_requests: int | None = None,
        arrival_rate: float | None = 2.0,
        arrival_times=None,
        decode_steps: int = 16,
        max_batch_size: int = 8,
        datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    ) -> ServingReport:
        """Serve an arrival trace on a fresh engine under load.

        Arrivals come from a Poisson process at ``arrival_rate``
        requests/s (seeded by the session seed) or from the explicit
        ``arrival_times`` trace. ``num_requests`` defaults to the trace
        length when ``arrival_times`` is given, else to 8.
        """
        from repro.serving.engine import ServingEngine
        from repro.serving.scheduler import ServingConfig
        from repro.workloads.generator import serving_workload

        engine = self._fresh_engine()
        if arrival_times is not None:
            arrival_rate = None
        trace = serving_workload(
            num_requests=num_requests,
            arrival_rate=arrival_rate,
            arrival_times=arrival_times,
            decode_steps=decode_steps,
            vocab_size=engine.model.vocab_size,
            datasets=datasets,
            seed=self.spec.seed,
        )
        serving = ServingEngine(engine, ServingConfig(max_batch_size=max_batch_size))
        return serving.serve_trace(trace)
