"""Generation sessions: repeatable prompt-to-completion runs.

A :class:`GenerationSession` freezes a full system configuration
(model, strategy, cache ratio, hardware, seed) and runs independent
generations against it — each run gets a *fresh* engine so clocks and
caches start cold, which is what the paper's per-configuration
measurements assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.engine import EngineConfig
from repro.engine.factory import make_engine
from repro.engine.metrics import GenerationResult
from repro.errors import ConfigError
from repro.rng import derive_rng

__all__ = ["SessionSpec", "GenerationSession"]


@dataclass(frozen=True)
class SessionSpec:
    """Frozen system configuration for a session."""

    model: str = "deepseek"
    strategy: str = "hybrimoe"
    cache_ratio: float = 0.5
    hardware: str = "paper"
    num_layers: int | None = None
    seed: int = 0
    strategy_kwargs: dict = field(default_factory=dict)
    engine_config: EngineConfig | None = None


class GenerationSession:
    """Run generations against one frozen configuration."""

    def __init__(self, spec: SessionSpec | None = None, **kwargs) -> None:
        if spec is None:
            spec = SessionSpec(**kwargs)
        elif kwargs:
            raise ConfigError("pass either a SessionSpec or keyword fields, not both")
        self.spec = spec

    def _fresh_engine(self):
        return make_engine(
            model=self.spec.model,
            strategy=self.spec.strategy,
            cache_ratio=self.spec.cache_ratio,
            hardware=self.spec.hardware,
            num_layers=self.spec.num_layers,
            seed=self.spec.seed,
            engine_config=self.spec.engine_config,
            strategy_kwargs=dict(self.spec.strategy_kwargs),
        )

    def run(
        self,
        prompt_tokens: np.ndarray | None = None,
        prompt_len: int = 128,
        decode_steps: int = 32,
        prompt_seed: int = 0,
    ) -> GenerationResult:
        """Run one generation on a fresh engine.

        Parameters
        ----------
        prompt_tokens:
            Explicit prompt ids; when omitted, ``prompt_len`` random
            ids are drawn deterministically from ``prompt_seed``.
        prompt_len:
            Prompt length for the synthetic prompt.
        decode_steps:
            Number of decode tokens to generate after prefill.
        prompt_seed:
            Seed of the synthetic prompt (vary for repeated trials).
        """
        engine = self._fresh_engine()
        if prompt_tokens is None:
            if prompt_len <= 0:
                raise ConfigError(f"prompt_len must be positive, got {prompt_len}")
            rng = derive_rng(self.spec.seed, "session", "prompt", prompt_seed)
            prompt_tokens = rng.integers(0, engine.model.vocab_size, size=prompt_len)
        return engine.generate(np.asarray(prompt_tokens), decode_steps=decode_steps)
