"""Strategy interface: how a framework schedules one MoE layer.

Every evaluated framework (HybriMoE and the four baselines) implements
:class:`Strategy`. The engine owns the mechanics — clocks, the cache
object, plan validation/execution, metric collection — and delegates
three decisions to the strategy:

- :meth:`Strategy.cache_spec` — policy, capacity, pinning and warm
  fill, as a declarative :class:`~repro.cache.sharded.CacheSpec` the
  engine materialises unsharded (one GPU) or sharded (N GPUs);
- :meth:`Strategy.plan_layer` — the per-layer execution plan, invoked
  once per device group on a multi-GPU platform;
- :meth:`Strategy.prefetch_requests` — which experts of future layers
  to pull over PCIe during idle windows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.manager import ExpertCache
from repro.cache.sharded import CacheSpec
from repro.core.prefetch import PredictedLayer
from repro.core.tasks import ExecutionPlan
from repro.models.gating import RouterOutput

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.engine import EngineRuntime

__all__ = ["LayerContext", "Strategy"]


@dataclass(frozen=True)
class LayerContext:
    """Everything a strategy may consult when planning one layer.

    On a single-GPU platform there is one context per layer. On a
    multi-GPU platform the pipeline partitions the layer's activated
    experts by home device and hands the strategy one context per
    device group — ``activated``/``cached_experts`` then cover only
    that device's slice, ``device_id`` names the device, and exactly
    one group per layer carries ``include_shared=True``.
    """

    layer: int
    stage: str  # "prefill" | "decode"
    n_tokens: int
    router: RouterOutput
    activated: tuple[tuple[int, int], ...]
    cached_experts: frozenset[int]
    moe_start: float
    pcie_backlog: float
    #: Ready-time offsets (relative to moe_start) of cached experts
    #: whose prefetch transfers are still in flight.
    inflight_offsets: tuple[tuple[int, float], ...] = ()
    #: GPU device this context's experts are homed on (0 unsharded).
    device_id: int = 0
    #: Whether this device's plan carries the fused shared-experts
    #: block (exactly one device per layer does).
    include_shared: bool = True
    #: Seconds until the fleet-shared CPU frees up, relative to
    #: ``moe_start`` (earlier devices' CPU fallback queues ahead;
    #: always 0 on a single-GPU platform thanks to the layer barrier).
    cpu_backlog: float = 0.0
    #: Activated experts of this context resident in *no* memory tier
    #: (tiered platforms only — empty on the classic two-tier engine).
    #: Using one first pays ``disk_fetch_s`` on the shared disk link.
    spilled_experts: frozenset[int] = frozenset()
    #: Estimated disk -> DRAM read seconds per spilled expert.
    disk_fetch_s: float = 0.0

    def activated_dict(self) -> dict[int, int]:
        return dict(self.activated)

    def inflight_dict(self) -> dict[int, float]:
        return dict(self.inflight_offsets)


class Strategy(ABC):
    """Per-framework scheduling behaviour plugged into the engine."""

    #: Short identifier used in configs and result tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.runtime: "EngineRuntime | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, runtime: "EngineRuntime") -> None:
        """Attach the engine runtime, then run strategy setup."""
        self.runtime = runtime
        self.setup()

    def setup(self) -> None:
        """Hook for warmup-trace profiling, pinning decisions, etc."""

    def on_costs_changed(self) -> None:
        """Hook fired when the engine's cost models changed in place.

        Hardware fault injection degrades a resource mid-run by
        mutating the shared cost-model wrappers; strategies that froze
        a cost-derived scalar at :meth:`setup` time refresh it here.
        The default is a no-op — strategies that always query the cost
        models live need nothing.
        """

    def cache_spec(self) -> CacheSpec:
        """Declarative recipe of the expert cache this strategy manages.

        The engine materialises the spec: unsharded on one GPU
        (:meth:`CacheSpec.build`), or as per-device shards behind a
        :class:`~repro.cache.sharded.ShardedCacheManager` when the
        platform has several (:meth:`CacheSpec.build_sharded`).
        """
        raise NotImplementedError(
            f"strategy {self.name!r} defines neither cache_spec() nor "
            "build_cache()"
        )

    def build_cache(self) -> ExpertCache:
        """Create the unsharded expert cache (materialises the spec)."""
        return self.cache_spec().build()

    # ------------------------------------------------------------------
    # per-layer behaviour
    # ------------------------------------------------------------------
    @abstractmethod
    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        """Produce the execution plan for one routed MoE layer."""

    def after_layer(self, ctx: LayerContext, plan: ExecutionPlan) -> None:
        """Post-execution cache maintenance.

        Default behaviour: insert every transferred expert into the
        cache (dynamic caching). Static-mapping strategies override
        this with a no-op.
        """
        runtime = self._runtime()
        for transfer in plan.transfers:
            runtime.cache.insert((transfer.layer, transfer.expert))

    def observe_scores(self, ctx: LayerContext) -> None:
        """Feed routing scores to the cache policy (MRS signal).

        Called once per layer before planning; default forwards the
        mean scores so score-aware policies stay current.
        """
        runtime = self._runtime()
        runtime.cache.observe_scores(ctx.layer, ctx.router.mean_scores())

    def prefetch_requests(
        self,
        ctx: LayerContext,
        predictions: list[PredictedLayer],
        budget_s: float,
        layer_span_s: float = float("inf"),
        backlog_s: float = 0.0,
    ) -> list[tuple]:
        """Experts of future layers to transfer during idle PCIe time.

        ``layer_span_s`` estimates the wall time of one layer and
        ``backlog_s`` the PCIe link's queued work — together they bound
        which transfers can land before their target layer. Returns
        ``(layer, expert)`` keys in issue order; default is no
        prefetching.

        On a tiered-memory platform a request may instead be the
        triple ``(layer, expert, "dram")``: promote the (spilled)
        expert into host DRAM only — pay the disk read now so a later
        use is a plain CPU compute or PCIe transfer — without spending
        PCIe bandwidth or a GPU cache slot on it.
        """
        return []

    def attention_device(self, layer: int) -> str:
        """Device running the layer's attention (llama.cpp overrides)."""
        return "gpu"

    # ------------------------------------------------------------------
    def _runtime(self) -> "EngineRuntime":
        if self.runtime is None:
            raise RuntimeError(
                f"strategy {self.name!r} used before being bound to an engine"
            )
        return self.runtime
