"""Latency and utilisation metrics (TTFT, TBT, hit rates, serving).

The paper evaluates Time To First Token for the prefill stage and Time
Between Tokens for decode (§VI-A.4). Both derive from the simulated
clock: a step's duration is the wall time between its start barrier and
the moment both compute resources drained.

Multi-request serving adds per-request records (queueing delay, TTFT
measured from *arrival*, TBT percentiles) and the fleet-level
:class:`ServingReport` (goodput, pooled latency percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hardware.faults import DegradationEvent

__all__ = [
    "StepMetrics",
    "GenerationResult",
    "latency_percentiles",
    "RequestRecord",
    "ServingReport",
]

#: Percentiles reported for every latency distribution.
PERCENTILES = (50, 95, 99)


def latency_percentiles(values: np.ndarray | list[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample as a flat ``{"p50": ...}`` dict."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot take percentiles of an empty latency sample")
    return {f"p{q}": float(np.percentile(arr, q)) for q in PERCENTILES}


def _sample_percentile(values, q: int, empty_message: str) -> float:
    """One percentile of a latency sample, with a contextual empty error."""
    if len(values) == 0:
        raise SimulationError(empty_message)
    return latency_percentiles(values)[f"p{q}"]


@dataclass(frozen=True)
class StepMetrics:
    """Timing and cache behaviour of one forward step."""

    stage: str  # "prefill" | "decode"
    n_tokens: int
    start: float
    end: float
    hits: int
    misses: int
    utilization: dict[str, float] = field(default_factory=dict)
    #: Number of sequences fused into this step (1 for solo generation;
    #: continuous batching merges one decode token per running request).
    batch_size: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class GenerationResult:
    """Full result of one prefill + decode generation run."""

    model_name: str
    strategy_name: str
    cache_ratio: float
    prefill: StepMetrics | None
    decode_steps: list[StepMetrics] = field(default_factory=list)
    total_hits: int = 0
    total_misses: int = 0

    @property
    def ttft(self) -> float:
        """Time To First Token: the prefill step's duration."""
        if self.prefill is None:
            raise SimulationError("run included no prefill step")
        return self.prefill.duration

    @property
    def tbt_values(self) -> np.ndarray:
        """Per-step decode latencies (Time Between Tokens)."""
        return np.array([s.duration for s in self.decode_steps], dtype=np.float64)

    @property
    def mean_tbt(self) -> float:
        """Mean decode latency per token."""
        if not self.decode_steps:
            raise SimulationError("run included no decode steps")
        return float(self.tbt_values.mean())

    @property
    def decode_throughput(self) -> float:
        """Decoded tokens per second."""
        return 1.0 / self.mean_tbt

    def _tbt_percentile(self, q: int) -> float:
        return _sample_percentile(
            self.tbt_values, q, "run included no decode steps"
        )

    @property
    def p50_tbt(self) -> float:
        """Median decode latency per token."""
        return self._tbt_percentile(50)

    @property
    def p95_tbt(self) -> float:
        """95th-percentile decode latency per token."""
        return self._tbt_percentile(95)

    @property
    def p99_tbt(self) -> float:
        """99th-percentile decode latency per token (tail latency)."""
        return self._tbt_percentile(99)

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def decode_hit_rate(self) -> float:
        """Hit rate over decode steps only (the Fig. 9 metric)."""
        hits = sum(s.hits for s in self.decode_steps)
        misses = sum(s.misses for s in self.decode_steps)
        total = hits + misses
        return hits / total if total else 0.0

    def mean_utilization(self, stage: str) -> dict[str, float]:
        """Average per-resource busy fraction across steps of a stage."""
        steps = (
            [self.prefill]
            if stage == "prefill" and self.prefill is not None
            else self.decode_steps
            if stage == "decode"
            else []
        )
        if not steps:
            return {}
        keys = steps[0].utilization.keys()
        return {
            k: float(np.mean([s.utilization.get(k, 0.0) for s in steps])) for k in keys
        }

    def summary(self) -> dict[str, float | str]:
        """Flat record for tabulation in the experiment harness."""
        record: dict[str, float | str] = {
            "model": self.model_name,
            "strategy": self.strategy_name,
            "cache_ratio": self.cache_ratio,
            "hit_rate": self.hit_rate,
        }
        if self.prefill is not None:
            record["ttft"] = self.ttft
        if self.decode_steps:
            record["mean_tbt"] = self.mean_tbt
            record["p50_tbt"] = self.p50_tbt
            record["p95_tbt"] = self.p95_tbt
            record["p99_tbt"] = self.p99_tbt
            record["decode_hit_rate"] = self.decode_hit_rate()
        return record


@dataclass(frozen=True)
class RequestRecord:
    """Frozen serving-side lifecycle record of one terminal request.

    All times are absolute simulated seconds on the shared clock; TTFT
    is measured from *arrival* (the serving convention), so it includes
    queueing delay on top of the prefill computation itself.

    ``status`` distinguishes the terminal outcomes: ``"finished"``
    records always carry both prefill instants, while ``"timed_out"``
    records may have a partial lifecycle (``prefill_start`` and/or
    ``first_token_time`` ``None`` when the request never got that far)
    and ``"shed"`` records have neither — for those, ``finish_time``
    is the abort-observation instant.
    """

    request_id: int
    prompt_len: int
    decode_tokens: int
    arrival_time: float
    prefill_start: float | None
    first_token_time: float | None
    finish_time: float
    tbt_values: tuple[float, ...]
    result: "GenerationResult | None" = None
    #: Priority class the request was served under.
    priority: str = "batch"
    #: Per-request TBT SLO target in seconds (None = no deadline).
    tbt_deadline: float | None = None
    #: Times the request was paused by cooperative preemption.
    num_preemptions: int = 0
    #: Times the request was re-routed after a replica crash (fleet
    #: serving only; always 0 on a single engine).
    num_failovers: int = 0
    #: Terminal status the request ended in ("finished", "timed_out"
    #: or "shed").
    status: str = "finished"
    #: Times the request was re-submitted after a timeout (fleet
    #: retry-with-backoff; always 0 on a single engine).
    num_retries: int = 0

    @property
    def is_completed(self) -> bool:
        """Whether the request actually finished its generation."""
        return self.status == "finished"

    @property
    def queueing_delay(self) -> float:
        """Seconds the request waited before its prefill started."""
        if self.prefill_start is None:
            raise SimulationError(
                f"request {self.request_id} never started its prefill "
                f"(status {self.status})"
            )
        return self.prefill_start - self.arrival_time

    @property
    def meets_tbt_deadline(self) -> bool | None:
        """Whether p99 TBT stayed within the deadline (None = no SLO).

        Prefill-only requests with a deadline trivially meet it (they
        emit no decode tokens to violate it).
        """
        if self.tbt_deadline is None:
            return None
        if not self.tbt_values:
            return True
        return self.p99_tbt <= self.tbt_deadline

    @property
    def ttft(self) -> float:
        """Arrival-to-first-token latency (queueing + prefill)."""
        if self.first_token_time is None:
            raise SimulationError(
                f"request {self.request_id} never emitted a first token "
                f"(status {self.status})"
            )
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        """Arrival-to-completion latency."""
        return self.finish_time - self.arrival_time

    def _tbt_percentile(self, q: int) -> float:
        return _sample_percentile(
            self.tbt_values,
            q,
            f"request {self.request_id} generated no decode tokens",
        )

    @property
    def p50_tbt(self) -> float:
        return self._tbt_percentile(50)

    @property
    def p95_tbt(self) -> float:
        return self._tbt_percentile(95)

    @property
    def p99_tbt(self) -> float:
        return self._tbt_percentile(99)

    def summary(self) -> dict[str, float | int]:
        """Flat per-request row for the serving report table."""
        # Keys are emitted unconditionally (NaN for a prefill-only
        # request, or one aborted before reaching that lifecycle
        # instant): table renderers derive columns from the first row,
        # so a variable key set would silently drop columns for every
        # other request.
        has_tbt = bool(self.tbt_values)
        return {
            "request": self.request_id,
            "class": self.priority,
            "status": self.status,
            "prompt_len": self.prompt_len,
            "tokens": self.decode_tokens,
            "arrival_s": self.arrival_time,
            "queue_delay_s": (
                self.queueing_delay
                if self.prefill_start is not None
                else float("nan")
            ),
            "ttft_s": (
                self.ttft if self.first_token_time is not None else float("nan")
            ),
            "p50_tbt_s": self.p50_tbt if has_tbt else float("nan"),
            "p95_tbt_s": self.p95_tbt if has_tbt else float("nan"),
            "p99_tbt_s": self.p99_tbt if has_tbt else float("nan"),
            "e2e_s": self.e2e_latency,
            "preemptions": self.num_preemptions,
            "failovers": self.num_failovers,
            "retries": self.num_retries,
        }


@dataclass
class ServingReport:
    """Aggregate outcome of one multi-request serving run.

    ``requests`` holds every *terminal* record — completed, timed-out
    and shed alike (the chaos invariant: every submitted request lands
    in this list exactly once, fleet-wide after :meth:`merged`).
    Latency and goodput metrics are computed over the **completed**
    subset only; aborted requests contribute to counts
    (``num_timeouts``, ``num_shed``) and to the makespan, never to
    percentiles.
    """

    model_name: str
    strategy_name: str
    cache_ratio: float
    max_batch_size: int
    requests: list[RequestRecord] = field(default_factory=list)
    total_hits: int = 0
    total_misses: int = 0
    #: Total cooperative preemptions performed during the run.
    preemptions: int = 0
    #: Hardware-degradation log: one event per change of the active
    #: fault set on a replica, in observation order.
    degradations: "list[DegradationEvent]" = field(default_factory=list)

    @classmethod
    def merged(cls, reports: "list[ServingReport]") -> "ServingReport":
        """Pool per-replica reports into one fleet-wide report.

        Replicas must be homogeneous (same model, strategy, cache
        ratio, batch ceiling) — a fleet mixing configurations has no
        single meaningful aggregate row. Records are pooled and
        re-sorted by request id; every percentile/goodput property then
        recomputes from the pooled records exactly as a single-engine
        report would, which is what the report-merge backfill test pins
        against a by-hand recomputation. Duplicate request ids across
        replicas are rejected: a request must finish on exactly one
        replica, failovers included.
        """
        if not reports:
            raise SimulationError("cannot merge zero serving reports")
        head = reports[0]
        for report in reports[1:]:
            mismatched = [
                name
                for name in (
                    "model_name",
                    "strategy_name",
                    "cache_ratio",
                    "max_batch_size",
                )
                if getattr(report, name) != getattr(head, name)
            ]
            if mismatched:
                raise SimulationError(
                    f"cannot merge heterogeneous serving reports "
                    f"(differing {', '.join(mismatched)})"
                )
        pooled = [r for report in reports for r in report.requests]
        ids = [r.request_id for r in pooled]
        duplicates = sorted({i for i in ids if ids.count(i) > 1})
        if duplicates:
            raise SimulationError(
                f"request ids finished on more than one replica: {duplicates}"
            )
        return cls(
            model_name=head.model_name,
            strategy_name=head.strategy_name,
            cache_ratio=head.cache_ratio,
            max_batch_size=head.max_batch_size,
            requests=sorted(pooled, key=lambda r: r.request_id),
            total_hits=sum(r.total_hits for r in reports),
            total_misses=sum(r.total_misses for r in reports),
            preemptions=sum(r.preemptions for r in reports),
            degradations=sorted(
                (d for report in reports for d in report.degradations),
                key=lambda d: (d.time, d.replica),
            ),
        )

    @property
    def num_requests(self) -> int:
        """Terminal records of any status (completed + aborted)."""
        return len(self.requests)

    @property
    def completed(self) -> list[RequestRecord]:
        """Records of requests that actually finished generating."""
        return [r for r in self.requests if r.is_completed]

    @property
    def num_completed(self) -> int:
        """Requests that finished their full generation."""
        return sum(1 for r in self.requests if r.is_completed)

    @property
    def num_timeouts(self) -> int:
        """Requests aborted for exceeding their timeout budget."""
        return sum(1 for r in self.requests if r.status == "timed_out")

    @property
    def num_shed(self) -> int:
        """Requests refused admission by overload shedding."""
        return sum(1 for r in self.requests if r.status == "shed")

    @property
    def num_retries(self) -> int:
        """Total timeout re-submissions across terminal requests."""
        return sum(r.num_retries for r in self.requests)

    @property
    def num_failovers(self) -> int:
        """Total replica-crash re-routings across finished requests."""
        return sum(r.num_failovers for r in self.requests)

    @property
    def first_arrival(self) -> float:
        if not self.requests:
            raise SimulationError("serving run completed no requests")
        return min(r.arrival_time for r in self.requests)

    @property
    def last_finish(self) -> float:
        if not self.requests:
            raise SimulationError("serving run completed no requests")
        return max(r.finish_time for r in self.requests)

    @property
    def makespan(self) -> float:
        """Wall time from first arrival to the last terminal instant.

        Spans *all* terminal records: an aborted request's
        ``finish_time`` is its abort-observation instant, so degraded
        runs are charged the full window in which they held resources.
        """
        return self.last_finish - self.first_arrival

    @property
    def goodput(self) -> float:
        """Completed requests per simulated second of the serving window.

        Timed-out and shed requests do not count — goodput measures
        work *delivered*, which is what the chaos benchmark's
        degraded-mode retention ratio compares against a fault-free
        run.
        """
        span = self.makespan
        if span <= 0.0:
            raise SimulationError("serving window is empty")
        return self.num_completed / span

    @property
    def token_throughput(self) -> float:
        """Delivered decode tokens per simulated second.

        Tokens of aborted requests were released with their partial
        work and never delivered, so only completed requests count.
        """
        span = self.makespan
        if span <= 0.0:
            raise SimulationError("serving window is empty")
        return sum(r.decode_tokens for r in self.completed) / span

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    @property
    def mean_queueing_delay(self) -> float:
        completed = self.completed
        if not completed:
            raise SimulationError("serving run completed no requests")
        return float(np.mean([r.queueing_delay for r in completed]))

    def ttft_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of arrival-to-first-token across completed requests."""
        return latency_percentiles([r.ttft for r in self.completed])

    def tbt_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 over every decode token of every completed request."""
        pooled = [tbt for r in self.completed for tbt in r.tbt_values]
        return latency_percentiles(pooled)

    def per_request_rows(self) -> list[dict[str, float | int]]:
        """Per-request table rows, ordered by request id."""
        return [r.summary() for r in sorted(self.requests, key=lambda r: r.request_id)]

    # ------------------------------------------------------------------
    # per-class (SLO) views
    # ------------------------------------------------------------------
    def priority_classes(self) -> list[str]:
        """Priority classes present, sorted by name."""
        return sorted({r.priority for r in self.requests})

    def requests_of_class(self, priority: str) -> list[RequestRecord]:
        """Terminal requests of one priority class, by request id."""
        return sorted(
            (r for r in self.requests if r.priority == priority),
            key=lambda r: r.request_id,
        )

    def class_goodput(self, priority: str) -> float:
        """Completed requests of a class per second of the full window."""
        span = self.makespan
        if span <= 0.0:
            raise SimulationError("serving window is empty")
        completed = sum(
            1 for r in self.requests_of_class(priority) if r.is_completed
        )
        return completed / span

    def class_summary(self) -> list[dict[str, float | int | str]]:
        """One aggregate row per priority class (the SLO view).

        Each row carries the class's request count, goodput over the
        shared serving window, TTFT and TBT percentiles, preemption
        count, and — when any request of the class has a
        ``tbt_deadline`` — the fraction whose p99 TBT met it
        (``slo_attainment``).
        """
        rows: list[dict[str, float | int | str]] = []
        for priority in self.priority_classes():
            records = self.requests_of_class(priority)
            completed = [r for r in records if r.is_completed]
            row: dict[str, float | int | str] = {
                "class": priority,
                "requests": len(records),
                "goodput_rps": self.class_goodput(priority),
                "preemptions": sum(r.num_preemptions for r in records),
                "timeouts": sum(1 for r in records if r.status == "timed_out"),
                "shed": sum(1 for r in records if r.status == "shed"),
            }
            # Latency percentiles cover the completed subset; a class
            # whose every request was aborted gets NaN, not an error —
            # it still has a meaningful count/goodput row.
            if completed:
                ttft = latency_percentiles([r.ttft for r in completed])
            else:
                ttft = {f"p{q}": float("nan") for q in PERCENTILES}
            for name, value in ttft.items():
                row[f"{name}_ttft_s"] = value
            pooled = [tbt for r in completed for tbt in r.tbt_values]
            if pooled:
                tbt = latency_percentiles(pooled)
            else:
                tbt = {f"p{q}": float("nan") for q in PERCENTILES}
            for name, value in tbt.items():
                row[f"{name}_tbt_s"] = value
            verdicts = [
                r.meets_tbt_deadline
                for r in completed
                if r.meets_tbt_deadline is not None
            ]
            row["slo_attainment"] = (
                sum(verdicts) / len(verdicts) if verdicts else float("nan")
            )
            rows.append(row)
        return rows

    def summary(self) -> dict[str, float | int | str]:
        """Flat aggregate record for tabulation and benchmarks."""
        has_completed = self.num_completed > 0
        record: dict[str, float | int | str] = {
            "model": self.model_name,
            "strategy": self.strategy_name,
            "cache_ratio": self.cache_ratio,
            "requests": self.num_requests,
            "completed": self.num_completed,
            "timeouts": self.num_timeouts,
            "shed": self.num_shed,
            "makespan_s": self.makespan,
            "goodput_rps": self.goodput,
            "token_throughput": self.token_throughput,
            "mean_queue_delay_s": (
                self.mean_queueing_delay if has_completed else float("nan")
            ),
            "hit_rate": self.hit_rate,
            "preemptions": self.preemptions,
            "failovers": self.num_failovers,
            "retries": self.num_retries,
        }
        # Fixed key set (NaN for an all-prefill or all-aborted run):
        # table renderers derive columns from the first row, and sweep
        # code indexes summary["p99_tbt_s"] unconditionally.
        if has_completed:
            ttft = self.ttft_percentiles()
        else:
            ttft = {f"p{q}": float("nan") for q in PERCENTILES}
        for name, value in ttft.items():
            record[f"{name}_ttft_s"] = value
        if any(r.tbt_values for r in self.completed):
            tbt = self.tbt_percentiles()
        else:
            tbt = {f"p{q}": float("nan") for q in PERCENTILES}
        for name, value in tbt.items():
            record[f"{name}_tbt_s"] = value
        return record
