"""Latency and utilisation metrics (TTFT, TBT, hit rates).

The paper evaluates Time To First Token for the prefill stage and Time
Between Tokens for decode (§VI-A.4). Both derive from the simulated
clock: a step's duration is the wall time between its start barrier and
the moment both compute resources drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["StepMetrics", "GenerationResult"]


@dataclass(frozen=True)
class StepMetrics:
    """Timing and cache behaviour of one forward step."""

    stage: str  # "prefill" | "decode"
    n_tokens: int
    start: float
    end: float
    hits: int
    misses: int
    utilization: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class GenerationResult:
    """Full result of one prefill + decode generation run."""

    model_name: str
    strategy_name: str
    cache_ratio: float
    prefill: StepMetrics | None
    decode_steps: list[StepMetrics] = field(default_factory=list)
    total_hits: int = 0
    total_misses: int = 0

    @property
    def ttft(self) -> float:
        """Time To First Token: the prefill step's duration."""
        if self.prefill is None:
            raise SimulationError("run included no prefill step")
        return self.prefill.duration

    @property
    def tbt_values(self) -> np.ndarray:
        """Per-step decode latencies (Time Between Tokens)."""
        return np.array([s.duration for s in self.decode_steps], dtype=np.float64)

    @property
    def mean_tbt(self) -> float:
        """Mean decode latency per token."""
        if not self.decode_steps:
            raise SimulationError("run included no decode steps")
        return float(self.tbt_values.mean())

    @property
    def decode_throughput(self) -> float:
        """Decoded tokens per second."""
        return 1.0 / self.mean_tbt

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def decode_hit_rate(self) -> float:
        """Hit rate over decode steps only (the Fig. 9 metric)."""
        hits = sum(s.hits for s in self.decode_steps)
        misses = sum(s.misses for s in self.decode_steps)
        total = hits + misses
        return hits / total if total else 0.0

    def mean_utilization(self, stage: str) -> dict[str, float]:
        """Average per-resource busy fraction across steps of a stage."""
        steps = (
            [self.prefill]
            if stage == "prefill" and self.prefill is not None
            else self.decode_steps
            if stage == "decode"
            else []
        )
        if not steps:
            return {}
        keys = steps[0].utilization.keys()
        return {
            k: float(np.mean([s.utilization.get(k, 0.0) for s in steps])) for k in keys
        }

    def summary(self) -> dict[str, float | str]:
        """Flat record for tabulation in the experiment harness."""
        record: dict[str, float | str] = {
            "model": self.model_name,
            "strategy": self.strategy_name,
            "cache_ratio": self.cache_ratio,
            "hit_rate": self.hit_rate,
        }
        if self.prefill is not None:
            record["ttft"] = self.ttft
        if self.decode_steps:
            record["mean_tbt"] = self.mean_tbt
            record["decode_hit_rate"] = self.decode_hit_rate()
        return record
