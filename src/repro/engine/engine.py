"""The inference engine: simulated hybrid execution of a functional MoE.

:class:`InferenceEngine` runs real numpy forward passes (so outputs are
bit-comparable with the reference model) while charging every
operation — attention, expert compute, weight transfers — to a
three-resource discrete-event clock using paper-scale cost models. A
pluggable :class:`~repro.engine.strategy_base.Strategy` decides the
per-layer plans, cache management and prefetching; the engine enforces
plan validity, lock/arrival semantics and collects TTFT/TBT metrics.

Two cost models are in play, mirroring the real system:

- the **actual** model (analytic roofline, optionally noise-wrapped)
  drives executed durations;
- the **estimated** model (fitted by the warmup phase, §IV-A) drives
  every scheduling decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cache.base import available_policies, make_policy
from repro.cache.manager import ExpertCache
from repro.cache.placement import available_placements, make_placement
from repro.cache.sharded import ShardedCacheManager
from repro.cache.tiered import TieredCacheManager
from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import LayerCostOracle
from repro.engine.metrics import GenerationResult, StepMetrics
from repro.engine.pipeline import StepPipeline
from repro.engine.strategy_base import Strategy
from repro.errors import ConfigError
from repro.hardware.cost_model import AnalyticCostModel, CostModel, NoisyCostModel
from repro.hardware.faults import DegradationState, DegradedCostModel
from repro.hardware.platform_presets import paper_testbed
from repro.hardware.simulator import ThreeResourceClock
from repro.hardware.warmup import WarmupCalibrator
from repro.models.model import ReferenceMoEModel, SequenceStateStore
from repro.prediction import ConfidenceGate, available_predictors, make_predictor
from repro.routing.generator import generate_trace
from repro.routing.statistics import expert_activation_frequency
from repro.routing.trace import RoutingTrace
from repro.rng import derive_rng

__all__ = ["EngineConfig", "EngineRuntime", "InferenceEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs shared by all strategies.

    Attributes
    ----------
    cache_ratio:
        Fraction of all routed experts that fit in GPU memory (the
        paper's "GPU expert cache ratio": 25/50/75%).
    seed:
        Root seed for profiling workloads and noise.
    calibrate:
        Fit the planner's cost model via the warmup phase; when False
        the planner sees ground-truth durations (an idealised planner).
    noise_sigma:
        Log-normal sigma of execution-time noise (0 = deterministic).
    profile_prompt_len / profile_decode_steps:
        Size of the warmup profiling run used for frequency statistics.
    prefetch_lookahead:
        Future layers considered by prefetching strategies (paper: 3).
    prefetch_confidence_decay:
        Per-distance gain discount of the impact-driven prefetcher.
    scheduler:
        Configuration of the hybrid scheduler's search.
    planner_fast_path:
        Convenience override of the planner path: True forces the
        incremental fast path, False forces the full pre-PR-3
        reference planner — the from-scratch simulator *with the plan
        memo disabled* (perf baselines, oracle comparisons) — and None
        (default) respects the scheduler config. Plans are
        bit-identical either way — this is purely a latency knob.
    engine_fast_path:
        Engine-core fast path (default on): vectorized per-layer step
        work in the pipeline, record-free batched plan execution,
        event-driven clock frontiers, indexed cache-residency lookups
        and memoized victim selection, and batched prefetch screening.
        ``False`` runs the pre-PR reference engine loop as a perf
        baseline and bit-equivalence oracle. Outputs, schedules, cache
        state and metrics are bit-identical either way
        (property-test-enforced) — purely a latency knob.
    prefetch_exact_top_m:
        Cap on how many screening survivors per predicted layer get an
        exact impact simulation (best delta bound first). ``None``
        keeps prefetch decisions exact; setting it trades small
        decision drift for bounded prefetcher latency.
    mrs_alpha:
        Averaging coefficient of the MRS cache policy (eq. 3).
    validate_plans:
        Validate every plan against routing/cache state (cheap; keep on).
    num_gpus:
        Simulated GPU devices. With 1 (the paper's testbed) the engine
        runs the historical single-device path; with more, the expert
        cache shards across devices (one :class:`ExpertCache` each, the
        aggregate ``cache_ratio`` budget split evenly) and the pipeline
        dispatches each expert to its home device.
    placement:
        Expert-placement policy routing keys to home devices when the
        cache is sharded: ``"round_robin"`` (by expert id),
        ``"layer_striped"`` (by layer) or ``"load_aware"`` (sticky
        least-loaded).
    sharded_cache:
        Force (True) or forbid (False) the sharded cache machinery;
        ``None`` picks it automatically (sharded iff ``num_gpus > 1``).
        ``sharded_cache=True`` with one GPU runs the full sharding path
        on a single shard — bit-identical to the unsharded engine, the
        property the multi-GPU equivalence tests enforce.
    cpu_cache_capacity:
        Routed-expert slots of host DRAM (the CPU tier of the memory
        hierarchy). ``None`` (default) keeps the paper's unbounded CPU
        store — bit-identical to the historical two-tier engine,
        test-enforced. An integer caps DRAM residency: experts outside
        both caches are **spilled to disk** and pay a disk read (on the
        clock's shared disk link) before any CPU compute or PCIe
        transfer.
    cpu_cache_policy:
        Eviction policy of the DRAM tier, from the same registry as
        the GPU tier (``"lru"``, ``"lfu"``, ``"mrs"``).
    disk_bandwidth:
        Override of the hardware profile's disk read bandwidth in
        bytes/s (e.g. to model SATA vs NVMe without a new profile).
        Requires a capacity-limited CPU tier.
    predictor:
        Cross-layer expert predictor driving confidence-gated deep
        prefetching (``"frequency"`` or ``"transition"``; see
        :mod:`repro.prediction`). ``None`` (default) keeps the
        historical gate-reuse heuristic — bit-identical to the pre-
        predictor engine across every strategy, test-enforced.
    predict_horizon:
        Deepest lookahead distance a confident predictor may extend
        prefetching to (>= ``prefetch_lookahead`` to matter).
    confidence_gate:
        Calibrated-confidence threshold of the
        :class:`~repro.prediction.gate.ConfidenceGate`. Confidence is
        strictly below 1, so ``1.0`` never fires — the equivalence
        oracle the bit-identity tests use.
    """

    cache_ratio: float = 0.5
    seed: int = 0
    calibrate: bool = True
    noise_sigma: float = 0.0
    profile_prompt_len: int = 32
    profile_decode_steps: int = 8
    prefetch_lookahead: int = 3
    prefetch_confidence_decay: float = 0.8
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    planner_fast_path: bool | None = None
    engine_fast_path: bool = True
    prefetch_exact_top_m: int | None = None
    mrs_alpha: float = 0.7
    validate_plans: bool = True
    num_gpus: int = 1
    placement: str = "round_robin"
    sharded_cache: bool | None = None
    cpu_cache_capacity: int | None = None
    cpu_cache_policy: str = "lru"
    disk_bandwidth: float | None = None
    predictor: str | None = None
    predict_horizon: int = 4
    confidence_gate: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.cache_ratio <= 1.0:
            raise ConfigError(f"cache_ratio must be in [0, 1], got {self.cache_ratio}")
        if self.num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.placement not in available_placements():
            known = ", ".join(available_placements())
            raise ConfigError(
                f"unknown placement {self.placement!r} (known: {known})"
            )
        if self.sharded_cache is False and self.num_gpus > 1:
            raise ConfigError("sharded_cache=False requires num_gpus=1")
        if self.noise_sigma < 0:
            raise ConfigError(f"noise_sigma must be non-negative, got {self.noise_sigma}")
        if self.prefetch_lookahead < 1:
            raise ConfigError(
                f"prefetch_lookahead must be >= 1, got {self.prefetch_lookahead}"
            )
        if self.profile_prompt_len <= 0:
            raise ConfigError(
                f"profile_prompt_len must be positive, got {self.profile_prompt_len}"
            )
        if self.profile_decode_steps <= 0:
            raise ConfigError(
                f"profile_decode_steps must be positive, got {self.profile_decode_steps}"
            )
        if not 0.0 <= self.mrs_alpha <= 1.0:
            raise ConfigError(f"mrs_alpha must be in [0, 1], got {self.mrs_alpha}")
        if self.prefetch_exact_top_m is not None and self.prefetch_exact_top_m < 1:
            raise ConfigError(
                f"prefetch_exact_top_m must be >= 1, got {self.prefetch_exact_top_m}"
            )
        if self.cpu_cache_capacity is not None and self.cpu_cache_capacity < 0:
            raise ConfigError(
                f"cpu_cache_capacity must be non-negative, got "
                f"{self.cpu_cache_capacity}"
            )
        if self.cpu_cache_policy not in available_policies():
            known = ", ".join(available_policies())
            raise ConfigError(
                f"unknown cpu_cache_policy {self.cpu_cache_policy!r} "
                f"(known: {known})"
            )
        if self.disk_bandwidth is not None:
            if self.disk_bandwidth <= 0:
                raise ConfigError(
                    f"disk_bandwidth must be positive, got {self.disk_bandwidth}"
                )
            if self.cpu_cache_capacity is None:
                raise ConfigError(
                    "disk_bandwidth requires a capacity-limited CPU tier "
                    "(set cpu_cache_capacity)"
                )
        if self.predictor is not None and self.predictor not in available_predictors():
            known = ", ".join(available_predictors())
            raise ConfigError(
                f"unknown predictor {self.predictor!r} (known: {known})"
            )
        if self.predict_horizon < 1:
            raise ConfigError(
                f"predict_horizon must be >= 1, got {self.predict_horizon}"
            )
        if not 0.0 <= self.confidence_gate <= 1.0:
            raise ConfigError(
                f"confidence_gate must be in [0, 1], got {self.confidence_gate}"
            )

    @property
    def tiered(self) -> bool:
        """Whether the engine runs the three-tier memory hierarchy."""
        return self.cpu_cache_capacity is not None

    def scheduler_config(self) -> SchedulerConfig:
        """The effective scheduler config (fast-path override applied).

        ``planner_fast_path=False`` selects the *reference baseline* —
        from-scratch simulation and no memo — so timings against it
        measure the whole pre-fast-path planner, not memo hits.
        """
        if self.planner_fast_path is None:
            return self.scheduler
        if self.planner_fast_path:
            return replace(self.scheduler, fast_path=True)
        return replace(self.scheduler, fast_path=False, plan_cache_size=0)


class EngineRuntime:
    """Shared state handed to strategies when they bind to an engine."""

    def __init__(
        self,
        model: ReferenceMoEModel,
        config: EngineConfig,
        cost_actual: CostModel,
        cost_estimated: CostModel,
    ) -> None:
        self.model = model
        self.model_config = model.config
        self.config = config
        self.cost_actual = cost_actual
        self.cost_estimated = cost_estimated
        self.clock = ThreeResourceClock(
            config.num_gpus, disk=config.tiered, fast=config.engine_fast_path
        )
        self.arrivals: dict[tuple[int, int], float] = {}
        #: In-flight disk -> DRAM stagings issued by prefetching, keyed
        #: by expert with the read's finish time. Residency flips only
        #: when a layer starts after the read has landed — the DRAM
        #: analogue of the GPU tier's ``arrivals`` gating.
        self.pending_dram: dict[tuple[int, int], float] = {}
        #: Confidence gate over the configured cross-layer predictor
        #: (bound by :class:`InferenceEngine`; None keeps the
        #: historical heuristic-only prefetch path).
        self.prediction_gate: ConfidenceGate | None = None
        #: Prefetch effectiveness accounting (pure observation — no
        #: code path consults these): GPU prefetches issued, and how
        #: many were still resident when their layer activated them.
        self.prefetch_issued = 0
        self.prefetch_used = 0
        self._prefetch_pending: set[tuple[int, int]] = set()
        self.cache: ExpertCache | ShardedCacheManager | TieredCacheManager | None = None
        #: Planner-side disk -> DRAM read estimate per routed expert
        #: (0 on two-tier platforms, where disk is never consulted).
        if config.tiered:
            self.disk_fetch_est_s = cost_estimated.disk_transfer_time(
                model.config.routed_expert_shape
            )
        else:
            self.disk_fetch_est_s = 0.0
        self.scheduler = HybridScheduler(self.estimated_oracle, config.scheduler_config())
        self._warmup_trace: RoutingTrace | None = None
        # Oracles are frozen value objects deterministic per n_tokens;
        # memoizing them spares StepPipeline rebuilding an identical
        # oracle for every layer of every step. (Reusing the object
        # never changes noisy-model draws — those happen per duration
        # call, not per oracle construction.)
        self._oracle_memo: dict[tuple[str, int], LayerCostOracle] = {}

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Simulated GPU device count."""
        return self.config.num_gpus

    @property
    def sharded(self) -> bool:
        """Whether the cache/pipeline run the device-sharded path."""
        if self.config.sharded_cache is not None:
            return self.config.sharded_cache
        return self.config.num_gpus > 1

    @property
    def tiered(self) -> bool:
        """Whether the engine runs the three-tier memory hierarchy."""
        return self.config.tiered

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------
    #: Bound on the oracle memo (distinct batch token counts seen).
    _ORACLE_MEMO_LIMIT = 512

    def _oracle(self, kind: str, cost: CostModel, n_tokens: int) -> LayerCostOracle:
        key = (kind, n_tokens)
        oracle = self._oracle_memo.get(key)
        if oracle is None:
            if len(self._oracle_memo) >= self._ORACLE_MEMO_LIMIT:
                self._oracle_memo.clear()
            oracle = self._oracle_memo[key] = LayerCostOracle.for_model(
                cost, self.model_config, n_tokens
            )
        return oracle

    def estimated_oracle(self, n_tokens: int) -> LayerCostOracle:
        """Planner-side duration oracle for a step of ``n_tokens``."""
        return self._oracle("estimated", self.cost_estimated, n_tokens)

    def actual_oracle(self, n_tokens: int) -> LayerCostOracle:
        """Execution-side duration oracle for a step of ``n_tokens``."""
        return self._oracle("actual", self.cost_actual, n_tokens)

    def invalidate_cost_caches(self) -> None:
        """Drop every cached cost-model *output* (the model changed).

        Called when a degradation state lands on the engine's cost
        models: the hybrid scheduler's plan memo and duration tables
        cache raw floats and must be rebuilt against the new costs, and
        the scalar disk-read estimate is recomputed. The oracle memo
        stays — :class:`~repro.core.tasks.LayerCostOracle` delegates
        every call to the (mutated-in-place) cost model, so cached
        oracles are never stale.
        """
        self.scheduler.invalidate_costs()
        if self.config.tiered:
            self.disk_fetch_est_s = self.cost_estimated.disk_transfer_time(
                self.model_config.routed_expert_shape
            )

    # ------------------------------------------------------------------
    # capacity & profiling
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """GPU expert slots implied by the cache ratio."""
        total = self.model_config.total_routed_experts
        return int(round(self.config.cache_ratio * total))

    @property
    def warmup_trace(self) -> RoutingTrace:
        """Profiling trace recorded during the warmup phase (cached)."""
        if self._warmup_trace is None:
            rng = derive_rng(self.config.seed, "engine", "profile-tokens")
            prompt = rng.integers(
                0, self.model.vocab_size, size=self.config.profile_prompt_len
            )
            self._warmup_trace = generate_trace(
                self.model,
                prompt,
                decode_steps=self.config.profile_decode_steps,
                seed=self.config.seed,
            )
        return self._warmup_trace

    def prefetch_hit_rate(self) -> float:
        """Fraction of issued GPU prefetches consumed by their layer.

        A prefetch counts as used when the expert was still resident
        the first time its layer activated it — the benchmark signal
        behind the predictor accuracy -> goodput sensitivity study.
        Returns 0 when nothing was prefetched.
        """
        if self.prefetch_issued == 0:
            return 0.0
        return self.prefetch_used / self.prefetch_issued

    def frequency_ranking(self) -> list[tuple[int, int]]:
        """``(layer, expert)`` keys by warmup activation frequency, desc."""
        counts = expert_activation_frequency(self.warmup_trace)
        keys = [
            (layer, expert)
            for layer in range(counts.shape[0])
            for expert in range(counts.shape[1])
        ]
        keys.sort(key=lambda k: (-counts[k[0], k[1]], k[0], k[1]))
        return keys


class InferenceEngine:
    """Simulated hybrid CPU-GPU inference of one functional MoE model.

    Parameters
    ----------
    model:
        The functional model (routing + numerics substrate).
    strategy:
        Scheduling strategy instance (HybriMoE or a baseline).
    hardware_profile:
        Platform description; defaults to the paper's testbed.
    config:
        Engine knobs (cache ratio, seeds, calibration, ...).
    """

    def __init__(
        self,
        model: ReferenceMoEModel,
        strategy: Strategy,
        hardware_profile=None,
        config: EngineConfig | None = None,
    ) -> None:
        self.config = config or EngineConfig()
        profile = hardware_profile or paper_testbed()
        if self.config.disk_bandwidth is not None:
            profile = replace(profile, disk_bw=self.config.disk_bandwidth)
        if self.config.tiered and profile.disk_bw is None:
            raise ConfigError(
                f"cpu_cache_capacity is set but hardware profile "
                f"{profile.name!r} models no disk tier; set disk_bandwidth "
                "or pick a profile with disk_bw"
            )
        ground_truth = AnalyticCostModel(profile)
        cost_actual: CostModel = ground_truth
        if self.config.noise_sigma > 0:
            cost_actual = NoisyCostModel(
                ground_truth, self.config.noise_sigma, seed=self.config.seed
            )
        if self.config.calibrate:
            cost_estimated: CostModel = WarmupCalibrator(ground_truth).calibrate(
                model.config
            )
        else:
            cost_estimated = ground_truth

        self.model = model
        self.strategy = strategy
        # Both cost models are wrapped for hardware fault injection
        # unconditionally: in the neutral state the wrapper returns the
        # base model's floats unchanged, so a fault-free engine stays
        # bit-identical to the historical construction. Wrapping here —
        # before the runtime and strategies bind — means every consumer
        # (scheduler oracles, prefetch lambdas, the executor) holds the
        # wrapper and sees degradation the moment it is applied.
        self.runtime = EngineRuntime(
            model,
            self.config,
            DegradedCostModel(cost_actual),
            DegradedCostModel(cost_estimated),
        )
        strategy.bind(self.runtime)
        if self.runtime.sharded:
            placement = make_placement(self.config.placement, self.config.num_gpus)
            gpu_cache: ExpertCache | ShardedCacheManager = (
                strategy.cache_spec().build_sharded(placement)
            )
        else:
            gpu_cache = strategy.build_cache()
        if self.config.tiered:
            self.runtime.cache = TieredCacheManager(
                gpu_cache, self._build_cpu_tier()
            )
        else:
            self.runtime.cache = gpu_cache
        self.runtime.cache.set_fast_path(self.config.engine_fast_path)
        self.runtime.cache.validate()
        if self.config.predictor is not None:
            # The predictor bulk-fits on the warmup trace (the same
            # profiling signal frequency pinning and MRS priming use)
            # and keeps learning online from every executed layer. Its
            # gate only changes scheduling once calibrated confidence
            # clears the threshold, so a fresh engine behaves exactly
            # like the heuristic one until trust is earned.
            predictor = make_predictor(
                self.config.predictor,
                num_layers=model.config.num_layers,
                num_experts=model.config.num_routed_experts,
                horizon=self.config.predict_horizon,
            )
            predictor.fit_trace(self.runtime.warmup_trace)
            self.runtime.prediction_gate = ConfidenceGate(
                predictor, threshold=self.config.confidence_gate
            )
        #: Batch-capable step executor; the serving layer drives it
        #: directly with many concurrent sequence states.
        self.pipeline = StepPipeline(model, strategy, self.runtime)
        #: Per-sequence decode states keyed by request id (multi-request
        #: serving); :meth:`generate` keeps its own private state below.
        self.states = SequenceStateStore(model)
        self._state = model.new_state()

    def _build_cpu_tier(self) -> ExpertCache:
        """The capacity-limited DRAM tier of the memory hierarchy.

        Engine-owned (not strategy-owned): host DRAM is a platform
        property shared by every scheduling strategy, unlike the GPU
        cache whose policy *is* part of each framework's design. The
        tier is warm-filled by warmup activation frequency — the
        hottest experts are DRAM-resident at start, mirroring a loader
        that streams the model in until host memory fills up.
        """
        policy_kwargs = {}
        if self.config.cpu_cache_policy == "mrs":
            policy_kwargs = {
                "alpha": self.config.mrs_alpha,
                "top_p": 2 * self.model.config.num_activated_experts,
            }
        tier = ExpertCache(
            self.config.cpu_cache_capacity,
            make_policy(self.config.cpu_cache_policy, **policy_kwargs),
        )
        tier.warm_fill(self.runtime.frequency_ranking())
        return tier

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(
        self,
        prompt_tokens: np.ndarray,
        decode_steps: int = 0,
        decode_token_source: str = "sampled",
    ) -> GenerationResult:
        """Run one prefill over the prompt plus ``decode_steps`` tokens.

        Decode tokens are the model's own continuations — sampled with
        a seeded temperature by default (``"greedy"`` collapses the
        functional model to a fixed point, which makes decode routing
        unrealistically cache-friendly).
        """
        prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
        if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
            raise ConfigError("prompt_tokens must be a non-empty 1-D id array")
        if decode_token_source not in ("sampled", "greedy"):
            raise ConfigError(
                f"decode_token_source must be 'sampled' or 'greedy', got "
                f"{decode_token_source!r}"
            )
        result = GenerationResult(
            model_name=self.model.config.name,
            strategy_name=self.strategy.name,
            cache_ratio=self.config.cache_ratio,
            prefill=None,
        )
        sample_rng = derive_rng(self.config.seed, "engine", "decode-sampling")
        hidden, metrics = self._run_step(prompt_tokens, "prefill")
        result.prefill = metrics
        last_hidden = hidden[-1]
        for _ in range(decode_steps):
            if decode_token_source == "greedy":
                token = self.model.greedy_next_token(last_hidden)
            else:
                token = self.model.sample_next_token(last_hidden, sample_rng)
            hidden, metrics = self._run_step(np.array([token]), "decode")
            last_hidden = hidden[-1]
            result.decode_steps.append(metrics)
        cache = self._cache()
        result.total_hits = cache.stats.hits
        result.total_misses = cache.stats.misses
        return result

    def set_degradation(self, state: DegradationState) -> bool:
        """Apply a hardware degradation state to both cost models.

        Returns True when the state actually changed — in which case
        every cache of cost-model outputs is invalidated (the hybrid
        scheduler's plan memo and duration tables, the scalar disk-read
        estimate) and the strategy is notified so it can refresh any
        cost-derived knobs of its own (the prefetcher's disk lead-time
        estimate). Applying the neutral state to a never-degraded
        engine is a bit-exact no-op: nothing is invalidated and every
        duration stays byte-identical, which is what keeps an unfired
        :class:`~repro.hardware.faults.HardwareFaultSchedule`
        indistinguishable from no schedule.
        """
        actual: DegradedCostModel = self.runtime.cost_actual
        estimated: DegradedCostModel = self.runtime.cost_estimated
        changed = actual.set_state(state)
        changed = estimated.set_state(state) or changed
        if changed:
            self.runtime.invalidate_cost_caches()
            self.strategy.on_costs_changed()
        return changed

    def decode_only(self, num_steps: int, warm_prompt_len: int = 8) -> GenerationResult:
        """Convenience: tiny prefill then ``num_steps`` decode tokens."""
        rng = derive_rng(self.config.seed, "engine", "decode-only-prompt")
        prompt = rng.integers(0, self.model.vocab_size, size=warm_prompt_len)
        return self.generate(prompt, decode_steps=num_steps)

    # ------------------------------------------------------------------
    # the per-step pipeline
    # ------------------------------------------------------------------
    def _cache(self) -> ExpertCache:
        return self.pipeline._cache()

    def _run_step(
        self, tokens: np.ndarray, stage: str
    ) -> tuple[np.ndarray, StepMetrics]:
        """One forward step of the engine's private generation sequence.

        The mechanics live in :class:`~repro.engine.pipeline.StepPipeline`
        (which also fuses steps across many sequences for serving); this
        wrapper binds it to ``generate``'s single decode state.
        """
        return self.pipeline.run_step(tokens, self._state, stage)
