"""Convenience constructors for strategies and engines.

The experiment harness, examples and tests all build engines the same
way; these helpers keep that construction in one place.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING

from repro.baselines.adapmoe import AdapMoEStrategy
from repro.baselines.ktransformers import KTransformersStrategy
from repro.baselines.llamacpp import LlamaCppStrategy
from repro.baselines.ondemand import OnDemandStrategy
from repro.core.strategy import HybriMoEStrategy
from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.strategy_base import Strategy
from repro.errors import ConfigError
from repro.hardware.cost_model import HardwareProfile
from repro.hardware.platform_presets import get_hardware_preset
from repro.models.model import ReferenceMoEModel
from repro.models.presets import get_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import EngineSpec, FleetSpec, ServingSpec

__all__ = [
    "available_strategies",
    "make_strategy",
    "make_engine",
    "make_serving_engine",
    "make_fleet",
]

_STRATEGIES = {
    "hybrimoe": HybriMoEStrategy,
    "ktransformers": KTransformersStrategy,
    "adapmoe": AdapMoEStrategy,
    "llamacpp": LlamaCppStrategy,
    "ondemand": OnDemandStrategy,
}


def available_strategies() -> list[str]:
    """Names accepted by :func:`make_strategy` / :func:`make_engine`."""
    return sorted(_STRATEGIES)


def _require_spec_exclusive(func, args: dict, spec_type: type, spec) -> None:
    """Enforce ``factory(spec=...)`` taking no other configuration.

    A spec *is* the configuration; mixing it with loose keyword
    overrides would create two sources of truth (and silently ignore
    one of them). Any argument that differs from its declared default
    alongside ``spec`` is an error naming the offending keywords.
    """
    if not isinstance(spec, spec_type):
        raise ConfigError(
            f"{func.__name__} spec must be a {spec_type.__name__}, got "
            f"{type(spec).__name__}"
        )
    clash = []
    for name, param in inspect.signature(func).parameters.items():
        if name == "spec":
            continue
        value = args[name]
        if value is param.default:
            continue
        try:
            if bool(value == param.default):
                continue
        except Exception:
            pass
        clash.append(name)
    if clash:
        raise ConfigError(
            f"{func.__name__}(spec=...) replaces the keyword configuration; "
            f"fold these arguments into the spec: {', '.join(sorted(clash))}"
        )


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by short name.

    Keyword arguments are forwarded (e.g. the HybriMoE ablation toggles
    ``scheduling=False``).
    """
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(available_strategies())
        raise ConfigError(f"unknown strategy {name!r} (known: {known})") from None
    return cls(**kwargs)


def make_engine(
    model: str | ReferenceMoEModel = "deepseek",
    strategy: str | Strategy = "hybrimoe",
    cache_ratio: float = 0.5,
    hardware: str | HardwareProfile = "paper",
    num_layers: int | None = None,
    seed: int = 0,
    num_gpus: int = 1,
    placement: str = "round_robin",
    planner_fast_path: bool | None = None,
    engine_fast_path: bool = True,
    cpu_cache_capacity: int | None = None,
    cpu_cache_policy: str = "lru",
    disk_bandwidth: float | None = None,
    predictor: str | None = None,
    predict_horizon: int = 4,
    confidence_gate: float = 0.6,
    engine_config: EngineConfig | None = None,
    strategy_kwargs: dict | None = None,
    model_kwargs: dict | None = None,
    spec: "EngineSpec | None" = None,
) -> InferenceEngine:
    """One-call engine construction from preset names.

    Parameters
    ----------
    spec:
        An :class:`~repro.scenarios.spec.EngineSpec` carrying the whole
        configuration. Mutually exclusive with every other argument;
        the spec's fields feed the exact same construction path as the
        legacy keywords, so ``make_engine(spec=s)`` is bit-identical to
        spelling ``s``'s fields out as keywords.
    model:
        Preset name (``"mixtral"``, ``"qwen2"``, ``"deepseek"``) or a
        ready-made functional model.
    strategy:
        Strategy short name or instance.
    cache_ratio:
        GPU expert cache ratio (ignored when ``engine_config`` given).
    hardware:
        Hardware preset name or profile.
    num_layers:
        Optional layer-count override for fast runs.
    seed:
        Root seed for the model and engine workloads.
    num_gpus:
        Simulated GPU devices; above 1 the expert cache shards across
        devices (ignored when ``engine_config`` given).
    placement:
        Expert-placement policy for the sharded cache —
        ``"round_robin"``, ``"layer_striped"`` or ``"load_aware"``
        (ignored when ``engine_config`` given).
    planner_fast_path:
        Planner path override: True = incremental fast path, False =
        the pre-PR-3 reference planner (from-scratch simulator, plan
        memo disabled), None = scheduler-config default (the fast
        path). Plans are bit-identical either way (ignored when
        ``engine_config`` given).
    engine_fast_path:
        Engine-core path: True (default) = vectorized step pipeline
        with record-free execution and cached clock frontiers, False =
        the pre-PR reference engine loop (perf baseline / oracle).
        Outputs are bit-identical either way (ignored when
        ``engine_config`` given).
    cpu_cache_capacity:
        Routed-expert slots of host DRAM; ``None`` keeps the unbounded
        CPU store (the classic two-tier engine). An integer enables the
        tiered memory hierarchy — experts outside both caches spill to
        disk (ignored when ``engine_config`` given).
    cpu_cache_policy:
        DRAM-tier eviction policy: ``"lru"``, ``"lfu"`` or ``"mrs"``
        (ignored when ``engine_config`` given).
    disk_bandwidth:
        Disk read-bandwidth override in bytes/s, replacing the hardware
        profile's ``disk_bw`` (ignored when ``engine_config`` given).
    predictor:
        Cross-layer expert predictor name (``"frequency"`` /
        ``"transition"``) driving confidence-gated deep prefetching;
        ``None`` keeps the historical heuristic bit-identically
        (ignored when ``engine_config`` given).
    predict_horizon:
        Deepest lookahead distance a confident predictor may extend
        prefetching to (ignored when ``engine_config`` given).
    confidence_gate:
        Calibrated-confidence threshold of the predictor's gate; 1.0
        never fires (ignored when ``engine_config`` given).
    engine_config:
        Full engine configuration; overrides ``cache_ratio``/``seed``/
        ``num_gpus``/``placement``/the tiered-memory knobs.
    strategy_kwargs / model_kwargs:
        Extra constructor arguments for strategy / functional model.
    """
    if spec is not None:
        # Imported lazily: repro.scenarios builds on this module.
        from repro.scenarios.spec import EngineSpec

        _require_spec_exclusive(make_engine, locals(), EngineSpec, spec)
        model = spec.model
        strategy = spec.strategy
        cache_ratio = spec.cache_ratio
        hardware = spec.hardware
        num_layers = spec.num_layers
        seed = spec.seed
        num_gpus = spec.num_gpus
        placement = spec.placement
        planner_fast_path = spec.planner_fast_path
        engine_fast_path = spec.engine_fast_path
        cpu_cache_capacity = spec.cpu_cache_capacity
        cpu_cache_policy = spec.cpu_cache_policy
        disk_bandwidth = spec.disk_bandwidth
        predictor = spec.predictor
        predict_horizon = spec.predict_horizon
        confidence_gate = spec.confidence_gate
    if isinstance(model, str):
        config = get_preset(model, num_layers=num_layers)
        model = ReferenceMoEModel(config, seed=seed, **(model_kwargs or {}))
    if isinstance(strategy, str):
        strategy = make_strategy(strategy, **(strategy_kwargs or {}))
    elif strategy_kwargs:
        raise ConfigError("strategy_kwargs only apply when strategy is a name")
    if isinstance(hardware, str):
        hardware = get_hardware_preset(hardware)
    if engine_config is None:
        engine_config = EngineConfig(
            cache_ratio=cache_ratio,
            seed=seed,
            num_gpus=num_gpus,
            placement=placement,
            planner_fast_path=planner_fast_path,
            engine_fast_path=engine_fast_path,
            cpu_cache_capacity=cpu_cache_capacity,
            cpu_cache_policy=cpu_cache_policy,
            disk_bandwidth=disk_bandwidth,
            predictor=predictor,
            predict_horizon=predict_horizon,
            confidence_gate=confidence_gate,
        )
    return InferenceEngine(model, strategy, hardware, engine_config)


def make_serving_engine(
    model: str | ReferenceMoEModel = "deepseek",
    strategy: str | Strategy = "hybrimoe",
    cache_ratio: float = 0.5,
    hardware: str | HardwareProfile = "paper",
    num_layers: int | None = None,
    seed: int = 0,
    num_gpus: int = 1,
    placement: str = "round_robin",
    planner_fast_path: bool | None = None,
    engine_fast_path: bool = True,
    cpu_cache_capacity: int | None = None,
    cpu_cache_policy: str = "lru",
    disk_bandwidth: float | None = None,
    predictor: str | None = None,
    predict_horizon: int = 4,
    confidence_gate: float = 0.6,
    max_batch_size: int = 8,
    prefill_chunk_tokens: int | None = None,
    preemption: bool = False,
    request_timeout_s: float | None = None,
    shed_queue_depth: int | None = None,
    shed_resume_depth: int | None = None,
    hardware_faults=None,
    serving_config=None,
    engine_config: EngineConfig | None = None,
    strategy_kwargs: dict | None = None,
    model_kwargs: dict | None = None,
    spec: "ServingSpec | None" = None,
):
    """One-call construction of a continuous-batching serving engine.

    ``spec`` takes a :class:`~repro.scenarios.spec.ServingSpec` carrying
    the whole configuration (mutually exclusive with every other
    argument) and feeds the same construction path as the legacy
    keywords — ``make_serving_engine(spec=s)`` is bit-identical to
    spelling ``s`` out.

    Builds a fresh :func:`make_engine` (cold clock, warm cache) and
    wraps it in a :class:`~repro.serving.engine.ServingEngine`.
    ``serving_config`` overrides ``max_batch_size`` /
    ``prefill_chunk_tokens`` / ``preemption`` / the resilience knobs
    when given; ``num_gpus``/``placement`` configure the sharded
    expert cache and device-aware dispatch exactly as in
    :func:`make_engine`.

    ``prefill_chunk_tokens`` bounds each prefill step to that many
    prompt tokens (slices interleave with fused decode steps);
    ``preemption`` lets arrived higher-priority requests pause the
    lowest-priority decoder when the batch is full. The defaults keep
    the historical FCFS behaviour bit-identically.
    ``request_timeout_s`` aborts requests past their end-to-end budget
    (terminal status ``TIMED_OUT``); ``shed_queue_depth`` /
    ``shed_resume_depth`` enable overload shedding between the
    high/low backlog watermarks; ``hardware_faults`` injects a
    sub-replica :class:`~repro.hardware.faults.HardwareFaultSchedule`
    (replica-0 windows apply).
    ``cpu_cache_capacity``/``cpu_cache_policy``/``disk_bandwidth``
    configure the tiered memory hierarchy exactly as in
    :func:`make_engine` (the shared serving cache then spans all three
    tiers).
    """
    # Imported lazily: repro.serving builds on repro.engine, so a
    # top-level import here would be circular.
    from repro.serving.engine import ServingEngine
    from repro.serving.scheduler import ServingConfig

    if spec is not None:
        from repro.scenarios.spec import ServingSpec

        _require_spec_exclusive(make_serving_engine, locals(), ServingSpec, spec)
        e = spec.engine
        model, strategy, cache_ratio = e.model, e.strategy, e.cache_ratio
        hardware, num_layers, seed = e.hardware, e.num_layers, e.seed
        num_gpus, placement = e.num_gpus, e.placement
        planner_fast_path = e.planner_fast_path
        engine_fast_path = e.engine_fast_path
        cpu_cache_capacity = e.cpu_cache_capacity
        cpu_cache_policy = e.cpu_cache_policy
        disk_bandwidth = e.disk_bandwidth
        predictor = e.predictor
        predict_horizon = e.predict_horizon
        confidence_gate = e.confidence_gate
        max_batch_size = spec.max_batch_size
        prefill_chunk_tokens = spec.prefill_chunk_tokens
        preemption = spec.preemption
        request_timeout_s = spec.request_timeout_s
        shed_queue_depth = spec.shed_queue_depth
        shed_resume_depth = spec.shed_resume_depth

    engine = make_engine(
        model=model,
        strategy=strategy,
        cache_ratio=cache_ratio,
        hardware=hardware,
        num_layers=num_layers,
        seed=seed,
        num_gpus=num_gpus,
        placement=placement,
        planner_fast_path=planner_fast_path,
        engine_fast_path=engine_fast_path,
        cpu_cache_capacity=cpu_cache_capacity,
        cpu_cache_policy=cpu_cache_policy,
        disk_bandwidth=disk_bandwidth,
        predictor=predictor,
        predict_horizon=predict_horizon,
        confidence_gate=confidence_gate,
        engine_config=engine_config,
        strategy_kwargs=strategy_kwargs,
        model_kwargs=model_kwargs,
    )
    if serving_config is None:
        serving_config = ServingConfig(
            max_batch_size=max_batch_size,
            prefill_chunk_tokens=prefill_chunk_tokens,
            preemption=preemption,
            request_timeout_s=request_timeout_s,
            shed_queue_depth=shed_queue_depth,
            shed_resume_depth=shed_resume_depth,
        )
    return ServingEngine(engine, serving_config, hardware_faults=hardware_faults)


def make_fleet(
    model: str | ReferenceMoEModel = "deepseek",
    strategy: str | Strategy = "hybrimoe",
    cache_ratio: float = 0.5,
    hardware: str | HardwareProfile = "paper",
    num_layers: int | None = None,
    seed: int = 0,
    num_gpus: int = 1,
    placement: str = "round_robin",
    planner_fast_path: bool | None = None,
    engine_fast_path: bool = True,
    cpu_cache_capacity: int | None = None,
    cpu_cache_policy: str = "lru",
    disk_bandwidth: float | None = None,
    predictor: str | None = None,
    predict_horizon: int = 4,
    confidence_gate: float = 0.6,
    max_batch_size: int = 8,
    prefill_chunk_tokens: int | None = None,
    preemption: bool = False,
    request_timeout_s: float | None = None,
    shed_queue_depth: int | None = None,
    shed_resume_depth: int | None = None,
    replicas: int = 2,
    router: str = "round_robin",
    fault_schedule=None,
    autoscale=None,
    hardware_faults=None,
    max_retries: int = 0,
    retry_backoff_s: float = 0.5,
    serving_config=None,
    engine_config: EngineConfig | None = None,
    strategy_kwargs: dict | None = None,
    model_kwargs: dict | None = None,
    spec: "FleetSpec | None" = None,
):
    """One-call construction of a multi-replica serving fleet.

    ``spec`` takes a :class:`~repro.scenarios.spec.FleetSpec` carrying
    the whole configuration (mutually exclusive with every other
    argument) and feeds the same construction path as the legacy
    keywords — ``make_fleet(spec=s)`` is bit-identical to spelling
    ``s`` out. Fault/autoscale schedules are live objects, not spec
    data; inject them via the keyword path.

    Builds a :class:`~repro.fleet.fleet.FleetRouter` whose ``replicas``
    identical replica engines are produced lazily by a
    :func:`make_engine` closure over these arguments — every replica
    gets the same model, strategy, hardware, seed and cache
    configuration (a homogeneous pool, required for the merged fleet
    report). ``router`` names the routing policy (``"round_robin"``,
    ``"least_loaded"`` or ``"cache_affinity"``); ``fault_schedule``
    injects replica crashes / slow windows, ``hardware_faults``
    injects sub-replica resource degradation (link / disk / straggler
    windows), ``max_retries``/``retry_backoff_s`` configure timeout
    retry-with-backoff, and ``autoscale`` enables threshold
    autoscaling of the active pool. The per-replica serving knobs
    (``max_batch_size`` / ``prefill_chunk_tokens`` / ``preemption`` /
    ``request_timeout_s`` / the shedding watermarks, or a full
    ``serving_config``) mirror :func:`make_serving_engine`.

    A fleet of one replica is bit-identical to the bare serving engine
    under every routing policy — the fleet equivalence tests pin this.
    """
    # Imported lazily: repro.fleet builds on repro.engine, so a
    # top-level import here would be circular.
    from repro.fleet.fleet import FleetRouter
    from repro.serving.scheduler import ServingConfig

    if spec is not None:
        from repro.scenarios.spec import FleetSpec

        _require_spec_exclusive(make_fleet, locals(), FleetSpec, spec)
        e = spec.engine
        model, strategy, cache_ratio = e.model, e.strategy, e.cache_ratio
        hardware, num_layers, seed = e.hardware, e.num_layers, e.seed
        num_gpus, placement = e.num_gpus, e.placement
        planner_fast_path = e.planner_fast_path
        engine_fast_path = e.engine_fast_path
        cpu_cache_capacity = e.cpu_cache_capacity
        cpu_cache_policy = e.cpu_cache_policy
        disk_bandwidth = e.disk_bandwidth
        predictor = e.predictor
        predict_horizon = e.predict_horizon
        confidence_gate = e.confidence_gate
        s = spec.serving
        max_batch_size = s.max_batch_size
        prefill_chunk_tokens = s.prefill_chunk_tokens
        preemption = s.preemption
        request_timeout_s = s.request_timeout_s
        shed_queue_depth = s.shed_queue_depth
        shed_resume_depth = s.shed_resume_depth
        replicas = spec.replicas
        router = spec.router
        max_retries = spec.max_retries
        retry_backoff_s = spec.retry_backoff_s

    if not isinstance(strategy, str) and replicas > 1:
        raise ConfigError(
            "pass the strategy by name for a multi-replica fleet: a shared "
            "strategy instance would leak scheduler state across replicas"
        )
    if isinstance(model, str):
        model = ReferenceMoEModel(
            get_preset(model, num_layers=num_layers),
            seed=seed,
            **(model_kwargs or {}),
        )

    def engine_factory() -> InferenceEngine:
        # Strategy instances hold per-engine state, so each replica
        # builds its own; the functional model is stateless per forward
        # and shared across the pool.
        return make_engine(
            model=model,
            strategy=strategy,
            cache_ratio=cache_ratio,
            hardware=hardware,
            num_layers=num_layers,
            seed=seed,
            num_gpus=num_gpus,
            placement=placement,
            planner_fast_path=planner_fast_path,
            engine_fast_path=engine_fast_path,
            cpu_cache_capacity=cpu_cache_capacity,
            cpu_cache_policy=cpu_cache_policy,
            disk_bandwidth=disk_bandwidth,
            predictor=predictor,
            predict_horizon=predict_horizon,
            confidence_gate=confidence_gate,
            engine_config=engine_config,
            strategy_kwargs=strategy_kwargs,
            model_kwargs=None,
        )

    if serving_config is None:
        serving_config = ServingConfig(
            max_batch_size=max_batch_size,
            prefill_chunk_tokens=prefill_chunk_tokens,
            preemption=preemption,
            request_timeout_s=request_timeout_s,
            shed_queue_depth=shed_queue_depth,
            shed_resume_depth=shed_resume_depth,
        )
    return FleetRouter(
        engine_factory,
        replicas=replicas,
        policy=router,
        config=serving_config,
        fault_schedule=fault_schedule,
        autoscale=autoscale,
        hardware_faults=hardware_faults,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
    )
