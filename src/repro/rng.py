"""Deterministic random-number-generator derivation.

Every stochastic component of the reproduction (model weights, synthetic
workloads, routing noise) derives its generator from a root seed plus a
tuple of string/int keys. Deriving rather than sharing generators keeps
results stable when components are added, removed, or reordered: the
trace produced for ``("model", "mixtral", layer)`` never changes because an
unrelated component consumed random numbers first.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng"]

_HASH_BYTES = 8


def derive_seed(root_seed: int, *keys: object) -> int:
    """Derive a stable 63-bit seed from a root seed and a key path.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    keys:
        Any hashable path components (strings, ints); they are rendered
        with ``repr`` so ``1`` and ``"1"`` derive different seeds.

    Examples
    --------
    >>> derive_seed(0, "model") != derive_seed(0, "workload")
    True
    >>> derive_seed(0, "model") == derive_seed(0, "model")
    True
    """
    digest = hashlib.blake2b(digest_size=_HASH_BYTES)
    digest.update(repr(int(root_seed)).encode())
    for key in keys:
        digest.update(b"/")
        digest.update(repr(key).encode())
    return int.from_bytes(digest.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


def derive_rng(root_seed: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from a key path."""
    return np.random.default_rng(derive_seed(root_seed, *keys))
