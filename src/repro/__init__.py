"""HybriMoE reproduction: hybrid CPU-GPU scheduling for MoE inference.

A simulation-grounded reproduction of *HybriMoE: Hybrid CPU-GPU
Scheduling and Cache Management for Efficient MoE Inference* (DAC
2025). The package provides:

- a functional numpy MoE model family matching the paper's three
  evaluated architectures (:mod:`repro.models`);
- an analytic hardware substrate with discrete-event CPU/GPU/PCIe
  timelines (:mod:`repro.hardware`);
- the HybriMoE scheduling system — schedule-simulation planning,
  impact-driven prefetching, score-aware MRS caching
  (:mod:`repro.core`, :mod:`repro.cache`) — generalised to a tiered
  GPU/DRAM/disk memory hierarchy for models that outgrow host RAM;
- four baseline frameworks re-implemented on the same substrate
  (:mod:`repro.baselines`);
- an inference engine with TTFT/TBT metrics (:mod:`repro.engine`),
  synthetic workloads with Poisson/trace arrival processes
  (:mod:`repro.workloads`) and the experiment harness regenerating
  every paper table and figure (:mod:`repro.experiments`);
- a multi-request serving layer — request queueing, FCFS admission,
  continuous batching of decode steps through one shared expert cache,
  and per-request serving metrics (:mod:`repro.serving`);
- a cluster-scale fleet layer — M replica engines behind a front-end
  router with pluggable policies (round-robin, least-loaded,
  cache-affinity), replica fault injection with lossless failover, and
  threshold autoscaling (:mod:`repro.fleet`).

Quickstart::

    from repro import make_engine
    engine = make_engine(model="deepseek", strategy="hybrimoe",
                         cache_ratio=0.25, num_layers=8)
    result = engine.decode_only(num_steps=16)
    print(result.mean_tbt, result.hit_rate)

Serving quickstart::

    from repro import make_serving_engine
    from repro.workloads import serving_workload
    serving = make_serving_engine(strategy="hybrimoe", num_layers=8)
    report = serving.serve_trace(serving_workload(8, arrival_rate=2.0))
    print(report.summary())

Scenario quickstart (the spec-based configuration API)::

    from repro import get_scenario, run_sweep
    report = get_scenario("chat-multiturn").run(seed=0)
    sweep = run_sweep(["chat-multiturn", "edge-decode"], "out/sweep",
                      strategies=["hybrimoe", "ondemand"])
    print(sweep.rows())
"""

from repro.engine import (
    EngineConfig,
    GenerationResult,
    GenerationSession,
    InferenceEngine,
    ServingReport,
    available_strategies,
    make_engine,
    make_fleet,
    make_serving_engine,
    make_strategy,
)
from repro.fleet import (
    AutoscaleConfig,
    FaultSchedule,
    FleetReport,
    FleetRouter,
    ReplicaFault,
    available_routers,
)
from repro.serving import Request, ServingConfig, ServingEngine
from repro.errors import (
    CacheError,
    ConfigError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceError,
)
from repro.models import MoEModelConfig, ReferenceMoEModel, get_preset
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    ServingSpec,
    SweepReport,
    WorkloadRecipe,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_sweep,
)
from repro.version import __version__

__all__ = [
    "__version__",
    "make_engine",
    "make_strategy",
    "make_serving_engine",
    "make_fleet",
    "available_strategies",
    "available_routers",
    "EngineSpec",
    "ServingSpec",
    "FleetSpec",
    "WorkloadRecipe",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "BUILTIN_SCENARIOS",
    "run_sweep",
    "SweepReport",
    "InferenceEngine",
    "ServingEngine",
    "FleetRouter",
    "FleetReport",
    "FaultSchedule",
    "ReplicaFault",
    "AutoscaleConfig",
    "ServingConfig",
    "ServingReport",
    "Request",
    "EngineConfig",
    "GenerationResult",
    "GenerationSession",
    "ReferenceMoEModel",
    "MoEModelConfig",
    "get_preset",
    "ReproError",
    "ConfigError",
    "SchedulingError",
    "CacheError",
    "SimulationError",
    "TraceError",
]
