"""HybriMoE reproduction: hybrid CPU-GPU scheduling for MoE inference.

A simulation-grounded reproduction of *HybriMoE: Hybrid CPU-GPU
Scheduling and Cache Management for Efficient MoE Inference* (DAC
2025). The package provides:

- a functional numpy MoE model family matching the paper's three
  evaluated architectures (:mod:`repro.models`);
- an analytic hardware substrate with discrete-event CPU/GPU/PCIe
  timelines (:mod:`repro.hardware`);
- the HybriMoE scheduling system — schedule-simulation planning,
  impact-driven prefetching, score-aware MRS caching
  (:mod:`repro.core`, :mod:`repro.cache`);
- four baseline frameworks re-implemented on the same substrate
  (:mod:`repro.baselines`);
- an inference engine with TTFT/TBT metrics (:mod:`repro.engine`),
  synthetic workloads (:mod:`repro.workloads`) and the experiment
  harness regenerating every paper table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import make_engine
    engine = make_engine(model="deepseek", strategy="hybrimoe",
                         cache_ratio=0.25, num_layers=8)
    result = engine.decode_only(num_steps=16)
    print(result.mean_tbt, result.hit_rate)
"""

from repro.engine import (
    EngineConfig,
    GenerationResult,
    GenerationSession,
    InferenceEngine,
    available_strategies,
    make_engine,
    make_strategy,
)
from repro.errors import (
    CacheError,
    ConfigError,
    ReproError,
    SchedulingError,
    SimulationError,
    TraceError,
)
from repro.models import MoEModelConfig, ReferenceMoEModel, get_preset
from repro.version import __version__

__all__ = [
    "__version__",
    "make_engine",
    "make_strategy",
    "available_strategies",
    "InferenceEngine",
    "EngineConfig",
    "GenerationResult",
    "GenerationSession",
    "ReferenceMoEModel",
    "MoEModelConfig",
    "get_preset",
    "ReproError",
    "ConfigError",
    "SchedulingError",
    "CacheError",
    "SimulationError",
    "TraceError",
]
